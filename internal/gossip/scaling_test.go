package gossip

import (
	"math"
	"testing"

	"lineartime/internal/consensus"
	"lineartime/internal/sim"
)

// TestMessageScalingLinear is the metamorphic check behind the Table 1
// gossip row: at the claimed boundary t = n/lg²n, doubling n from 512
// to 1024 must grow the message count by at most ~2^1.4 — i.e., the
// per-node message cost stays bounded once out of the small-size
// constant regime (Theorem 9's O(n + t log n log t) with t at the
// boundary is O(n)).
func TestMessageScalingLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep skipped in -short mode")
	}
	run := func(n int) int64 {
		tt := int(float64(n) / math.Pow(math.Log2(float64(n)), 2))
		if tt < 1 {
			tt = 1
		}
		top, err := consensus.NewTopology(n, tt, consensus.TopologyOptions{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		ms := make([]*Gossip, n)
		ps := make([]sim.Protocol, n)
		for i := 0; i < n; i++ {
			ms[i] = New(i, top, Rumor(i))
			ps[i] = ms[i]
		}
		res, err := sim.Run(sim.Config{Protocols: ps, MaxRounds: ms[0].ScheduleLength() + 8})
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.Messages
	}
	m512, m1024 := run(512), run(1024)
	exponent := math.Log2(float64(m1024) / float64(m512))
	if exponent > 1.4 {
		t.Fatalf("message growth exponent %.2f for n: 512→1024 (msgs %d→%d); want ≤ 1.4 (linear shape)",
			exponent, m512, m1024)
	}
}
