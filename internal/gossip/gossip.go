package gossip

import (
	"lineartime/internal/bitset"
	"lineartime/internal/consensus"
	"lineartime/internal/probe"
	"lineartime/internal/sim"
)

// Gossip is the per-node state machine of algorithm Gossip (Figure 5),
// assuming t < n/5. It runs two parts of ⌈lg n⌉ phases each. Every
// phase has two inquiry/response rounds over the growing overlay G_i
// followed by 2+lg(5t) rounds of local probing on the little overlay G:
//
//	Part 1 builds extant sets: little nodes pull absent pairs from
//	their G_i neighbors and synchronize through probing.
//	Part 2 builds completion sets: little nodes push their (by then
//	complete) extant sets to G_i neighbors they have not covered yet,
//	tracking coverage in completion sets merged through probing.
//
// Theorem 9: O(log n · log t) rounds and O(n + t·log n·log t) messages.
type Gossip struct {
	id  int
	top *consensus.Topology

	extant     *ExtantSet
	completion []bool // completion set; little nodes only

	probing      *probe.Probing
	survivedPrev bool  // survived the previous phase's probing
	inquirers    []int // Part 1 inquiry senders awaiting a response

	phases   int // ⌈lg n⌉ per part
	phaseLen int // 2 + γ
	p1End    int
	p2End    int
	halted   bool
}

// New creates the gossip machine for node id with the given rumor.
func New(id int, top *consensus.Topology, rumor Rumor) *Gossip {
	g := &Gossip{
		id:           id,
		top:          top,
		extant:       NewExtantSet(top.N),
		survivedPrev: true,
	}
	g.extant.Update(id, rumor)
	gamma := top.Little.P.Gamma
	g.phases = ceilLog2(top.N)
	if g.phases < 1 {
		g.phases = 1
	}
	g.phaseLen = 2 + gamma
	g.p1End = g.phases * g.phaseLen
	g.p2End = 2 * g.p1End
	if top.IsLittle(id) {
		g.probing = probe.New(top.Little.Neighbors(id), gamma, top.Little.P.Delta)
		g.completion = make([]bool, top.N)
		g.completion[id] = true
	}
	return g
}

func ceilLog2(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	return k
}

// ScheduleLength returns the protocol's fixed round count.
func (g *Gossip) ScheduleLength() int { return g.p2End }

// Extant returns the node's extant set (the decided output).
func (g *Gossip) Extant() *ExtantSet { return g.extant }

// position decomposes a round into (part, phase, offset-in-phase).
func (g *Gossip) position(round int) (part, phase, off int) {
	if round < g.p1End {
		return 1, round / g.phaseLen, round % g.phaseLen
	}
	r := round - g.p1End
	return 2, r / g.phaseLen, r % g.phaseLen
}

// overlayFor returns the inquiry overlay of the given 0-based phase.
func (g *Gossip) overlayFor(phase int) []int {
	o, err := g.top.Inquiry.Phase(phase + 1)
	if err != nil {
		panic("gossip: inquiry overlay unavailable: " + err.Error())
	}
	return o.Neighbors(g.id)
}

// Send implements sim.Protocol.
func (g *Gossip) Send(round int) []sim.Envelope {
	if round >= g.p2End {
		return nil
	}
	part, phase, off := g.position(round)
	little := g.top.IsLittle(g.id)
	switch off {
	case 0: // inquiry (Part 1) / push (Part 2) round
		if !little || (phase > 0 && !g.survivedPrev) {
			return nil
		}
		if part == 1 {
			var out []sim.Envelope
			for _, u := range g.overlayFor(phase) {
				if !g.extant.Present(u) {
					out = append(out, sim.Envelope{From: g.id, To: u, Payload: sim.Inquiry{}})
				}
			}
			return out
		}
		var out []sim.Envelope
		var snapshot *ExtantSet
		for _, u := range g.overlayFor(phase) {
			if !g.completion[u] {
				g.completion[u] = true
				if snapshot == nil {
					snapshot = g.extant.Clone()
				}
				out = append(out, sim.Envelope{From: g.id, To: u, Payload: ExtantPayload{Set: snapshot}})
			}
		}
		return out
	case 1: // response round (Part 1 only)
		if part == 1 && len(g.inquirers) > 0 {
			out := make([]sim.Envelope, 0, len(g.inquirers))
			for _, to := range g.inquirers {
				out = append(out, sim.Envelope{From: g.id, To: to, Payload: PairPayload{Node: g.id, Value: Rumor(g.extant.Rumor(g.id))}})
			}
			g.inquirers = g.inquirers[:0]
			return out
		}
		return nil
	default: // probing rounds
		if g.probing == nil {
			return nil
		}
		targets := g.probing.SendTargets()
		if len(targets) == 0 {
			return nil
		}
		// One snapshot shared by all targets: receivers only read it.
		var payload sim.Payload
		if part == 1 {
			payload = ExtantPayload{Set: g.extant.Clone()}
		} else {
			payload = CompletionPayload{Set: completionToSet(g.completion)}
		}
		out := make([]sim.Envelope, 0, len(targets))
		for _, to := range targets {
			out = append(out, sim.Envelope{From: g.id, To: to, Payload: payload})
		}
		return out
	}
}

// completionToSet snapshots a completion vector as a bit set.
func completionToSet(completion []bool) *bitset.Set {
	s := bitset.New(len(completion))
	for i, ok := range completion {
		if ok {
			s.Add(i)
		}
	}
	return s
}

// Deliver implements sim.Protocol.
func (g *Gossip) Deliver(round int, inbox []sim.Envelope) {
	if round >= g.p2End {
		return
	}
	part, phase, off := g.position(round)
	switch off {
	case 0:
		if part == 1 {
			for _, env := range inbox {
				if _, ok := env.Payload.(sim.Inquiry); ok {
					g.inquirers = append(g.inquirers, env.From)
				}
			}
		} else {
			// Part 2 push round: receivers absorb pushed extant sets.
			for _, env := range inbox {
				if p, ok := env.Payload.(ExtantPayload); ok {
					g.extant.MergeFrom(p.Set)
				}
			}
		}
	case 1:
		if part == 1 {
			for _, env := range inbox {
				if p, ok := env.Payload.(PairPayload); ok {
					g.extant.Update(p.Node, p.Value)
				}
			}
		}
	default:
		if g.probing != nil {
			count := 0
			for _, env := range inbox {
				switch p := env.Payload.(type) {
				case ExtantPayload:
					count++
					g.extant.MergeFrom(p.Set)
				case CompletionPayload:
					count++
					p.Set.ForEach(func(v int) { g.completion[v] = true })
				}
			}
			g.probing.Observe(count)
			if g.probing.Done() {
				g.survivedPrev = g.probing.Survived()
				if phase+1 < g.phases || part == 1 {
					g.probing.Reset()
				}
			}
		}
	}
	if round == g.p2End-1 {
		g.halted = true
	}
}

// Halted implements sim.Protocol.
func (g *Gossip) Halted() bool { return g.halted }

var _ sim.Protocol = (*Gossip)(nil)

// PartAt maps a round to its gossip part and block, for the engine's
// per-part message attribution.
func (g *Gossip) PartAt(round int) string {
	if round >= g.p2End {
		return ""
	}
	part, _, off := g.position(round)
	switch {
	case part == 1 && off <= 1:
		return "p1/inquiry"
	case part == 1:
		return "p1/probing"
	case off == 0:
		return "p2/push"
	default:
		return "p2/probing"
	}
}
