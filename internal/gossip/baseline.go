package gossip

import (
	"lineartime/internal/sim"
)

// AllToAll is the trivial gossip comparator: every node sends its pair
// to every other node in round 0 and decides after one round. Θ(n²)
// messages, O(1) rounds — the message profile the paper's algorithm
// beats by a factor of n/(t·polylog) (§1 comparison).
//
// Correctness under crashes is immediate: a node that crashed before
// sending anything contributes no pair; a node that halts operational
// completed its multicast (a node crashed mid-multicast is faulty, so
// the gossip conditions say nothing about it).
type AllToAll struct {
	id, n  int
	extant *ExtantSet
	halted bool
}

// NewAllToAll creates the baseline machine for node id of n.
func NewAllToAll(id, n int, rumor Rumor) *AllToAll {
	e := NewExtantSet(n)
	e.Update(id, rumor)
	return &AllToAll{id: id, n: n, extant: e}
}

// ScheduleLength returns the fixed round count (2: send, settle).
func (a *AllToAll) ScheduleLength() int { return 2 }

// Extant returns the decided extant set.
func (a *AllToAll) Extant() *ExtantSet { return a.extant }

// Send implements sim.Protocol.
func (a *AllToAll) Send(round int) []sim.Envelope {
	if round != 0 {
		return nil
	}
	out := make([]sim.Envelope, 0, a.n-1)
	for to := 0; to < a.n; to++ {
		if to != a.id {
			out = append(out, sim.Envelope{From: a.id, To: to, Payload: PairPayload{Node: a.id, Value: a.extant.Rumor(a.id)}})
		}
	}
	return out
}

// Deliver implements sim.Protocol.
func (a *AllToAll) Deliver(round int, inbox []sim.Envelope) {
	for _, env := range inbox {
		if p, ok := env.Payload.(PairPayload); ok {
			a.extant.Update(p.Node, p.Value)
		}
	}
	if round >= 1 {
		a.halted = true
	}
}

// Halted implements sim.Protocol.
func (a *AllToAll) Halted() bool { return a.halted }

var _ sim.Protocol = (*AllToAll)(nil)
