package gossip

import (
	"fmt"
	"math/bits"

	"lineartime/internal/bitset"
	"lineartime/internal/consensus"
	"lineartime/internal/probe"
	"lineartime/internal/sim"
)

// SlicedGossip is the lane-parallel implementation of Gossip
// (Figure 5) for the bit-sliced engine: 64 independent replicas of the
// protocol over one shared topology, one bit per lane. The per-node
// extant and completion sets — one bit per node pair in the scalar
// machine — become 64-lane word planes, so a set merge is an OR over n
// words for all lanes at once, and the overlay traversal plus phase
// schedule amortize across the whole batch.
//
// Payload contents never ride the wire: a message's SlicedMsg.Tag
// names its payload type, and for extant/completion sets it also names
// a snapshot slot — the sender's set planes copied at send time into a
// ring of maxDelay+1 slots, which receivers merge from at delivery.
// The snapshot reproduces the scalar Clone-at-send semantics (a
// receiver merges the sender's state as of the send round, not its
// live state), and the ring keeps a slot alive until the last delayed
// copy of its round's messages can arrive. Rumor values are not stored
// at all: first-write-wins updates make every copy of node u's pair
// equal to u's own rumor, so presence bits suffice and callers
// reconstruct values from the per-lane inputs.
//
// Equivalence contract (pinned by the scenario-level parity suite):
// per lane, byte-identical behaviour to the scalar Gossip machine
// under the same fault layer — same sends in the same order, same
// merges, same probing pauses and survivals, same halting round.
// Nothing in the protocol escapes word logic, so the escape mask is
// always zero.
type SlicedGossip struct {
	n, L  int
	lanes int
	all   uint64

	phases   int
	phaseLen int
	p1End    int
	p2End    int

	delta    int
	ringSize int // snapshot slots: maxDelay+1

	// Captured adjacency: inqNbrs[phase][i] is little node i's G_{phase+1}
	// inquiry overlay (used by Part 1 inquiries and Part 2 pushes alike),
	// littleNbrs[i] its probing overlay. Captured once at construction so
	// implicit topologies pay the neighborhood generation once, not per
	// lane per round.
	inqNbrs    [][][]int
	littleNbrs [][]int

	known   []uint64 // [v*n+u]: lanes in which v's extant set has u
	comp    []uint64 // [i*n+u], i < L: lanes in which i's completion set has u
	haltedW []uint64 // per node: lanes halted
	inqFrom [][]inqEntry

	prob *probe.Sliced

	// Snapshot ring: column (slot, i<L) holds i's extant (resp.
	// completion) planes as of its last send into that slot, and
	// snapCnt the per-lane extant cardinality for wire accounting.
	snapExt  []uint64
	snapComp []uint64
	snapCnt  [][64]int64

	snapCtr  bitset.LaneCounter
	probeCtr bitset.LaneCounter
}

// inqEntry is one Part 1 inquiry awaiting a response: the inquirer and
// the lanes its inquiry arrived in.
type inqEntry struct {
	from  int32
	lanes uint64
}

// Message tags: the low bits name the payload type, the rest the
// snapshot slot for set-carrying payloads.
const (
	tagInquiry    = 0
	tagPair       = 1
	tagExtant     = 2
	tagCompletion = 3
	tagTypeMask   = 3
	tagSlotShift  = 2

	pairBits = 16 + RumorBits
)

// NewSlicedGossip builds the lane-parallel machine for `lanes` replicas
// of Gossip over top, able to absorb link delays up to maxDelay rounds
// (the largest MaxDelay any lane's link filter declares; 0 when none
// delay). The constructor materializes every overlay neighborhood it
// will traverse; an error means an inquiry overlay could not be built.
func NewSlicedGossip(top *consensus.Topology, lanes, maxDelay int) (*SlicedGossip, error) {
	if lanes <= 0 || lanes > sim.MaxLanes {
		return nil, fmt.Errorf("gossip: sliced lanes must be in [1, %d], got %d", sim.MaxLanes, lanes)
	}
	if maxDelay < 0 {
		maxDelay = 0
	}
	n, L := top.N, top.L
	gamma := top.Little.P.Gamma
	g := &SlicedGossip{
		n:        n,
		L:        L,
		lanes:    lanes,
		all:      bitset.LaneMask(lanes),
		delta:    top.Little.P.Delta,
		ringSize: maxDelay + 1,
	}
	g.phases = ceilLog2(n)
	if g.phases < 1 {
		g.phases = 1
	}
	g.phaseLen = 2 + gamma
	g.p1End = g.phases * g.phaseLen
	g.p2End = 2 * g.p1End

	g.inqNbrs = make([][][]int, g.phases)
	for ph := 0; ph < g.phases; ph++ {
		o, err := top.Inquiry.Phase(ph + 1)
		if err != nil {
			return nil, fmt.Errorf("gossip: inquiry overlay %d: %w", ph+1, err)
		}
		row := make([][]int, L)
		for i := 0; i < L; i++ {
			row[i] = o.Neighbors(i)
		}
		g.inqNbrs[ph] = row
	}
	g.littleNbrs = make([][]int, L)
	for i := 0; i < L; i++ {
		g.littleNbrs[i] = top.Little.Neighbors(i)
	}
	g.prob = probe.NewSliced(L, g.delta)

	g.known = make([]uint64, n*n)
	g.comp = make([]uint64, L*n)
	g.haltedW = make([]uint64, n)
	g.inqFrom = make([][]inqEntry, n)
	g.snapExt = make([]uint64, g.ringSize*L*n)
	g.snapComp = make([]uint64, g.ringSize*L*n)
	g.snapCnt = make([][64]int64, g.ringSize*L)
	g.Reset()
	return g, nil
}

// Reset rearms the machine for a fresh run over the same topology and
// lane count, allocation-free: every node knows only its own pair,
// little nodes have completed only themselves, nobody halted or
// paused. Snapshot slots need no clearing — a run only reads slots its
// own sends wrote.
func (g *SlicedGossip) Reset() {
	clear(g.known)
	clear(g.comp)
	clear(g.haltedW)
	for i := range g.inqFrom {
		g.inqFrom[i] = g.inqFrom[i][:0]
	}
	for v := 0; v < g.n; v++ {
		g.known[v*g.n+v] = g.all
	}
	for i := 0; i < g.L; i++ {
		g.comp[i*g.n+i] = g.all
	}
	g.prob.Reset(g.all)
}

// N implements sim.SlicedSystem.
func (g *SlicedGossip) N() int { return g.n }

// Lanes returns the configured lane count.
func (g *SlicedGossip) Lanes() int { return g.lanes }

// ScheduleLength returns the protocol's fixed round count.
func (g *SlicedGossip) ScheduleLength() int { return g.p2End }

// Known returns the lanes in which node v's extant set contains u —
// the per-lane decided output, read by the batch runner to materialize
// reports.
func (g *SlicedGossip) Known(v, u int) uint64 { return g.known[v*g.n+u] }

// position decomposes a round into (part, phase, offset-in-phase),
// mirroring Gossip.position.
func (g *SlicedGossip) position(round int) (part, phase, off int) {
	if round < g.p1End {
		return 1, round / g.phaseLen, round % g.phaseLen
	}
	r := round - g.p1End
	return 2, r / g.phaseLen, r % g.phaseLen
}

// PartAt maps a round to its gossip part and block, matching the
// scalar machine's per-part attribution labels.
func (g *SlicedGossip) PartAt(round int) string {
	if round >= g.p2End {
		return ""
	}
	part, _, off := g.position(round)
	switch {
	case part == 1 && off <= 1:
		return "p1/inquiry"
	case part == 1:
		return "p1/probing"
	case off == 0:
		return "p2/push"
	default:
		return "p2/probing"
	}
}

func (g *SlicedGossip) slot(round int) int { return round % g.ringSize }

// snapshotExtant copies node's extant planes into the slot's column
// and records the per-lane cardinality for wire-size accounting.
func (g *SlicedGossip) snapshotExtant(slot, node int) {
	src := g.known[node*g.n:][:g.n]
	col := g.snapExt[(slot*g.L+node)*g.n:][:g.n]
	g.snapCtr.Reset()
	for u := range src {
		col[u] = src[u]
		g.snapCtr.Add(src[u])
	}
	cnt := &g.snapCnt[slot*g.L+node]
	*cnt = [64]int64{}
	g.snapCtr.Flush(cnt)
}

// snapshotComp copies node's completion planes into the slot's column.
// Completion payloads have lane-independent wire size (one bitmap), so
// no cardinality is recorded.
func (g *SlicedGossip) snapshotComp(slot, node int) {
	src := g.comp[node*g.n:][:g.n]
	col := g.snapComp[(slot*g.L+node)*g.n:][:g.n]
	copy(col, src)
}

// SlicedSend implements sim.SlicedSystem, mirroring Gossip.Send per
// lane: the append order filtered to a lane is exactly the scalar
// machine's emission order in that lane.
func (g *SlicedGossip) SlicedSend(round, node int, active uint64, out []sim.SlicedMsg) ([]sim.SlicedMsg, uint64) {
	if round >= g.p2End {
		return out, 0
	}
	part, phase, off := g.position(round)
	switch off {
	case 0: // inquiry (Part 1) / push (Part 2) round: little nodes only
		if node >= g.L {
			return out, 0
		}
		gate := active
		if phase > 0 {
			gate &= g.prob.SurvivedMask(node)
		}
		if gate == 0 {
			return out, 0
		}
		base := node * g.n
		if part == 1 {
			for _, u := range g.inqNbrs[phase][node] {
				if m := gate &^ g.known[base+u]; m != 0 {
					out = append(out, sim.SlicedMsg{From: int32(node), To: int32(u), Lanes: m, Tag: tagInquiry})
				}
			}
			return out, 0
		}
		slot := g.slot(round)
		tag := uint32(tagExtant | slot<<tagSlotShift)
		var need uint64
		for _, u := range g.inqNbrs[phase][node] {
			if m := gate &^ g.comp[base+u]; m != 0 {
				g.comp[base+u] |= m
				need |= m
				out = append(out, sim.SlicedMsg{From: int32(node), To: int32(u), Lanes: m, Tag: tag})
			}
		}
		if need != 0 {
			g.snapshotExtant(slot, node)
		}
		return out, 0
	case 1: // response round (Part 1 only)
		if part == 1 && len(g.inqFrom[node]) > 0 {
			for _, e := range g.inqFrom[node] {
				out = append(out, sim.SlicedMsg{From: int32(node), To: e.from, Lanes: e.lanes, Tag: tagPair})
			}
			g.inqFrom[node] = g.inqFrom[node][:0]
		}
		return out, 0
	default: // probing rounds: little nodes only
		if node >= g.L {
			return out, 0
		}
		send := g.prob.SendMask(node, active)
		nbrs := g.littleNbrs[node]
		if send == 0 || len(nbrs) == 0 {
			return out, 0
		}
		slot := g.slot(round)
		var tag uint32
		if part == 1 {
			g.snapshotExtant(slot, node)
			tag = uint32(tagExtant | slot<<tagSlotShift)
		} else {
			g.snapshotComp(slot, node)
			tag = uint32(tagCompletion | slot<<tagSlotShift)
		}
		for _, u := range nbrs {
			out = append(out, sim.SlicedMsg{From: int32(node), To: int32(u), Lanes: send, Tag: tag})
		}
		return out, 0
	}
}

// mergeExtant ORs the sender's snapshotted extant planes into node's,
// confined to the lanes the message arrived in.
func (g *SlicedGossip) mergeExtant(node int, m *sim.SlicedMsg, eff uint64) {
	src := g.snapExt[(int(m.Tag>>tagSlotShift)*g.L+int(m.From))*g.n:][:g.n]
	dst := g.known[node*g.n:][:g.n]
	for u := range dst {
		dst[u] |= src[u] & eff
	}
}

// mergeComp ORs the sender's snapshotted completion planes into
// node's. Callers guarantee node < L.
func (g *SlicedGossip) mergeComp(node int, m *sim.SlicedMsg, eff uint64) {
	src := g.snapComp[(int(m.Tag>>tagSlotShift)*g.L+int(m.From))*g.n:][:g.n]
	dst := g.comp[node*g.n:][:g.n]
	for u := range dst {
		dst[u] |= src[u] & eff
	}
}

// SlicedDeliver implements sim.SlicedSystem, mirroring Gossip.Deliver:
// each (part, offset) block accepts exactly the payload types the
// scalar type switch accepts there, so delayed messages crossing into
// the wrong block are dropped or absorbed identically.
func (g *SlicedGossip) SlicedDeliver(round, node int, active uint64, inbox []sim.SlicedMsg) uint64 {
	if round >= g.p2End {
		return 0
	}
	part, phase, off := g.position(round)
	switch {
	case off == 0 && part == 1: // inquiry arrivals
		for i := range inbox {
			m := &inbox[i]
			if m.Tag&tagTypeMask != tagInquiry {
				continue
			}
			if eff := m.Lanes & active; eff != 0 {
				g.inqFrom[node] = append(g.inqFrom[node], inqEntry{from: m.From, lanes: eff})
			}
		}
	case off == 0: // Part 2 push arrivals: absorb pushed extant sets
		for i := range inbox {
			m := &inbox[i]
			if m.Tag&tagTypeMask != tagExtant {
				continue
			}
			if eff := m.Lanes & active; eff != 0 {
				g.mergeExtant(node, m, eff)
			}
		}
	case off == 1: // response arrivals (Part 1 only)
		if part == 1 {
			for i := range inbox {
				m := &inbox[i]
				if m.Tag&tagTypeMask != tagPair {
					continue
				}
				// The responder sends its own pair, whose value is
				// determined by the sender name — presence is the state.
				g.known[node*g.n+int(m.From)] |= m.Lanes & active
			}
		}
	default: // probing rounds
		if node < g.L {
			g.probeCtr.Reset()
			for i := range inbox {
				m := &inbox[i]
				eff := m.Lanes & active
				if eff == 0 {
					continue
				}
				switch m.Tag & tagTypeMask {
				case tagExtant:
					g.probeCtr.Add(eff)
					g.mergeExtant(node, m, eff)
				case tagCompletion:
					g.probeCtr.Add(eff)
					g.mergeComp(node, m, eff)
				}
			}
			g.prob.Observe(node, &g.probeCtr, active)
			if off == g.phaseLen-1 {
				g.prob.FinishPhase(node, active, phase+1 < g.phases || part == 1)
			}
		}
	}
	if round == g.p2End-1 {
		g.haltedW[node] |= active
	}
	return 0
}

// HaltedLanes implements sim.SlicedSystem.
func (g *SlicedGossip) HaltedLanes(node int) uint64 { return g.haltedW[node] }

// AddSlicedBits implements sim.SlicedSizer: per-lane wire sizes
// matching the scalar payloads — 1 bit per inquiry, a name and a rumor
// per pair, a bitmap per completion set, and a bitmap plus the
// snapshotted per-lane cardinality of rumors per extant set.
func (g *SlicedGossip) AddSlicedBits(m sim.SlicedMsg, lanes uint64, acc *[64]int64) {
	switch m.Tag & tagTypeMask {
	case tagInquiry:
		for w := lanes; w != 0; w &= w - 1 {
			acc[bits.TrailingZeros64(w)]++
		}
	case tagPair:
		for w := lanes; w != 0; w &= w - 1 {
			acc[bits.TrailingZeros64(w)] += pairBits
		}
	case tagCompletion:
		nb := int64(g.n)
		for w := lanes; w != 0; w &= w - 1 {
			acc[bits.TrailingZeros64(w)] += nb
		}
	case tagExtant:
		cnt := &g.snapCnt[int(m.Tag>>tagSlotShift)*g.L+int(m.From)]
		nb := int64(g.n)
		for w := lanes; w != 0; w &= w - 1 {
			lane := bits.TrailingZeros64(w)
			acc[lane] += nb + RumorBits*cnt[lane]
		}
	}
}

var (
	_ sim.SlicedSystem = (*SlicedGossip)(nil)
	_ sim.SlicedSizer  = (*SlicedGossip)(nil)
)
