package gossip

import (
	"testing"

	"lineartime/internal/consensus"
	"lineartime/internal/crash"
)

// Phase-boundary failure injection: crashes timed to hit each block of
// the gossip schedule — inquiry rounds, response rounds, and specific
// probing rounds — exercising the survivedPrev gating and the
// mid-probing pause machinery at their exact trigger points.

func phaseBoundaries(g *Gossip) (phaseLen, gamma int) {
	return g.phaseLen, g.phaseLen - 2
}

func TestGossipCrashAtEveryBlockType(t *testing.T) {
	n, tt := 60, 12
	top, err := consensus.NewTopology(n, tt, consensus.TopologyOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	probe := New(0, top, 0)
	phaseLen, _ := phaseBoundaries(probe)

	cases := []struct {
		name  string
		round func(phase int) int
	}{
		{"inquiry-round", func(p int) int { return p * phaseLen }},
		{"response-round", func(p int) int { return p*phaseLen + 1 }},
		{"first-probing-round", func(p int) int { return p*phaseLen + 2 }},
		{"last-probing-round", func(p int) int { return (p+1)*phaseLen - 1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// One little victim per phase, mid-send (keep 1), timed at
			// the block under test.
			var events []crash.Event
			for p := 0; p < 4; p++ {
				events = append(events, crash.Event{
					Node:  p * 3, // little nodes (L = 60 here)
					Round: c.round(p),
					Keep:  1,
				})
			}
			ms, res := runGossip(t, n, tt, crash.NewSchedule(events), 8)
			checkGossip(t, ms, res, nil)
		})
	}
}

func TestGossipCrashStormInOnePhase(t *testing.T) {
	// The full crash budget lands inside a single phase's probing
	// block: survivors of that probing must still be enough to finish.
	n, tt := 60, 12
	top, err := consensus.NewTopology(n, tt, consensus.TopologyOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	probe := New(0, top, 0)
	phaseLen, gamma := phaseBoundaries(probe)
	start := phaseLen + 2 // phase 1's probing block
	var events []crash.Event
	for i := 0; i < tt; i++ {
		events = append(events, crash.Event{
			Node:  2 * i,
			Round: start + i%gamma,
			Keep:  0,
		})
	}
	ms, res := runGossip(t, n, tt, crash.NewSchedule(events), 9)
	checkGossip(t, ms, res, nil)
	if res.Crashed.Count() != tt {
		t.Fatalf("crashed %d, want %d", res.Crashed.Count(), tt)
	}
}

func TestGossipPartBoundaryCrashes(t *testing.T) {
	// Crashes exactly at the Part 1 → Part 2 boundary, where extant
	// sets freeze and completion sets take over.
	n, tt := 60, 12
	top, err := consensus.NewTopology(n, tt, consensus.TopologyOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	boundary := New(0, top, 0).p1End
	events := []crash.Event{
		{Node: 0, Round: boundary - 1, Keep: 1},
		{Node: 3, Round: boundary, Keep: 1},
		{Node: 6, Round: boundary + 1, Keep: 0},
	}
	ms, res := runGossip(t, n, tt, crash.NewSchedule(events), 10)
	checkGossip(t, ms, res, nil)
}
