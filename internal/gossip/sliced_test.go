package gossip

import (
	"testing"

	"lineartime/internal/consensus"
	"lineartime/internal/obs"
	"lineartime/internal/sim"
)

// allocCrashPlan is a declarative crash schedule with a pre-built event
// slice, so CrashEvents is allocation-free (the real crash adversaries
// rebuild their slices per call, which would charge the steady-state
// guard for the fault model instead of the engine).
type allocCrashPlan struct{ events []sim.CrashEvent }

func (p allocCrashPlan) FilterSend(round int, from sim.NodeID, out []sim.Envelope) ([]sim.Envelope, bool) {
	for _, e := range p.events {
		if e.Node == from && e.Round == round {
			if e.Keep < 0 || e.Keep >= len(out) {
				return out, true
			}
			return out[:e.Keep], true
		}
	}
	return out, false
}

func (p allocCrashPlan) CrashEvents() []sim.CrashEvent { return p.events }

// allocDelayLink is a stateless payload-independent drop/delay filter
// embedding NoFailures for the empty crash declaration, like
// internal/link's models.
type allocDelayLink struct {
	sim.NoFailures
	d    int
	seed uint64
}

func (h allocDelayLink) FilterLink(round int, env sim.Envelope) sim.Verdict {
	x := h.seed
	x ^= uint64(round) * 0x9e3779b97f4a7c15
	x ^= uint64(env.From) * 0xbf58476d1ce4e5b9
	x ^= uint64(env.To) * 0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	switch p := x % 100; {
	case p < 10:
		return sim.Drop
	case p < 30:
		return sim.DelayBy(1 + int((x>>32)%uint64(h.d)))
	default:
		return sim.Deliver
	}
}

func (h allocDelayLink) MaxDelay() int { return h.d }

// TestRuntimeSlicedGossipSteadyStateAllocs is the sliced gossip path's
// 0-alloc guard: one SlicedGossip machine reset across pooled engine
// runs at full lane width — with per-lane crash schedules and delaying
// link filters in the mix — must be allocation-free once the arena and
// the machine's buffers have grown to the shape's peak.
func TestRuntimeSlicedGossipSteadyStateAllocs(t *testing.T) {
	const n, tBound, lanes, maxDelay = 96, 16, 64, 2
	top, err := consensus.NewTopology(n, tBound, consensus.TopologyOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	faults := make([]sim.LinkFault, lanes)
	for lane := range faults {
		switch lane % 3 {
		case 1:
			faults[lane] = allocCrashPlan{events: []sim.CrashEvent{
				{Node: sim.NodeID(lane % n), Round: lane % 7, Keep: lane%4 - 1},
				{Node: sim.NodeID((lane + 40) % n), Round: lane % 11, Keep: -1},
			}}
		case 2:
			faults[lane] = allocDelayLink{d: maxDelay, seed: uint64(900 + lane)}
		}
	}
	sys, err := NewSlicedGossip(top, lanes, maxDelay)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.SlicedConfig{
		System:    sys,
		Lanes:     lanes,
		MaxRounds: sys.ScheduleLength() + 8,
		Faults:    faults,
		// A metrics-backed tracer rides along: the guard proves the
		// observability path is allocation-free too.
		Tracer: obs.NewEngineTracer(obs.NewRegistry()),
	}
	rt := sim.NewRuntime()
	var runErr error
	oneRun := func() {
		sys.Reset()
		if _, err := rt.RunSliced(cfg); err != nil {
			runErr = err
		}
	}
	// Two warmup runs grow every buffer — engine arena and the
	// machine's inquiry lists — to the shape's peak.
	oneRun()
	oneRun()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if allocs := testing.AllocsPerRun(5, oneRun); allocs != 0 {
		t.Fatalf("steady-state sliced gossip run allocated %.1f times; want 0", allocs)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
}
