// Package gossip implements the fault-tolerant gossiping algorithm of
// the paper (§5, Figure 5, Theorem 9) and the all-to-all baseline it
// improves on. Each node starts with a rumor; every non-faulty node
// must decide on an extant set of (node, rumor) pairs that contains
// every node that halted operational and excludes every node that
// crashed before sending anything.
package gossip

import (
	"lineartime/internal/bitset"
	"lineartime/internal/sim"
)

// Rumor is a node's input value. 64 bits stands in for "linear size"
// payloads; the simulator's accounting charges RumorBits per pair.
type Rumor uint64

// RumorBits is the wire size charged per rumor.
const RumorBits = 64

// ExtantSet is a node's view: for each node name either a proper pair
// (the rumor) or nil (unknown). The zero value is unusable; use
// NewExtantSet.
type ExtantSet struct {
	known  *bitset.Set
	rumors []Rumor
}

// NewExtantSet returns an extant set over n nodes with every pair nil.
func NewExtantSet(n int) *ExtantSet {
	return &ExtantSet{known: bitset.New(n), rumors: make([]Rumor, n)}
}

// Update records the proper pair (node, rumor); later updates for the
// same node are ignored (pairs are immutable once proper, §5).
func (e *ExtantSet) Update(node int, rumor Rumor) {
	if e.known.Contains(node) {
		return
	}
	e.known.Add(node)
	e.rumors[node] = rumor
}

// Present reports whether node has a proper pair at this extant set.
func (e *ExtantSet) Present(node int) bool { return e.known.Contains(node) }

// Rumor returns node's rumor, valid only when Present(node).
func (e *ExtantSet) Rumor(node int) Rumor { return e.rumors[node] }

// Count returns the number of proper pairs.
func (e *ExtantSet) Count() int { return e.known.Count() }

// Known returns a copy of the membership set.
func (e *ExtantSet) Known() *bitset.Set { return e.known.Clone() }

// MergeFrom absorbs every proper pair of other that is nil here.
func (e *ExtantSet) MergeFrom(other *ExtantSet) {
	other.known.ForEach(func(node int) {
		e.Update(node, other.rumors[node])
	})
}

// Clone returns an independent copy.
func (e *ExtantSet) Clone() *ExtantSet {
	return &ExtantSet{known: e.known.Clone(), rumors: append([]Rumor(nil), e.rumors...)}
}

// Payload types of the gossip protocol. Sizes follow the paper's
// "messages of linear size" accounting: an extant-set message costs a
// membership bitmap plus the carried rumors.

// PairPayload is a response carrying one proper pair.
type PairPayload struct {
	Node  int
	Value Rumor
}

// SizeBits implements sim.Payload: a node name plus a rumor.
func (PairPayload) SizeBits() int { return 16 + RumorBits }

// ExtantPayload carries a whole extant set.
type ExtantPayload struct {
	Set *ExtantSet
}

// SizeBits implements sim.Payload.
func (p ExtantPayload) SizeBits() int {
	return p.Set.known.Len() + RumorBits*p.Set.Count()
}

// CompletionPayload carries a completion set (Part 2 bookkeeping).
type CompletionPayload struct {
	Set *bitset.Set
}

// SizeBits implements sim.Payload.
func (p CompletionPayload) SizeBits() int { return p.Set.Len() }

var (
	_ sim.Payload = PairPayload{}
	_ sim.Payload = ExtantPayload{}
	_ sim.Payload = CompletionPayload{}
)
