package gossip

import (
	"testing"
	"testing/quick"

	"lineartime/internal/consensus"
	"lineartime/internal/crash"
	"lineartime/internal/rng"
	"lineartime/internal/sim"
)

// Property: rumor integrity — whatever crash schedule runs, any rumor
// present in a decided extant set equals the owner's true input. A
// protocol bug that cross-wires pairs (e.g. attributing node a's rumor
// to node b) breaks this before it breaks completeness.
func TestGossipRumorIntegrityQuick(t *testing.T) {
	const n, tt = 40, 8
	top, err := consensus.NewTopology(n, tt, consensus.TopologyOptions{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		rumors := make([]Rumor, n)
		for i := range rumors {
			rumors[i] = Rumor(r.Uint64())
		}
		var events []crash.Event
		perm := r.Perm(n)
		f := r.Intn(tt + 1)
		for i := 0; i < f; i++ {
			events = append(events, crash.Event{
				Node:  perm[i],
				Round: r.Intn(40),
				Keep:  r.Intn(4) - 1,
			})
		}
		ms := make([]*Gossip, n)
		ps := make([]sim.Protocol, n)
		for i := 0; i < n; i++ {
			ms[i] = New(i, top, rumors[i])
			ps[i] = ms[i]
		}
		res, err := sim.Run(sim.Config{
			Protocols: ps,
			Fault:     crash.NewSchedule(events),
			MaxRounds: ms[0].ScheduleLength() + 4,
		})
		if err != nil {
			return false
		}
		for i, m := range ms {
			if res.Crashed.Contains(i) {
				continue
			}
			e := m.Extant()
			for j := 0; j < n; j++ {
				if e.Present(j) && e.Rumor(j) != rumors[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: extant sets only grow through a run — already-proper pairs
// are never dropped or overwritten (checked indirectly: own pair is
// always present with the true rumor).
func TestGossipOwnPairStableQuick(t *testing.T) {
	const n, tt = 40, 8
	top, err := consensus.NewTopology(n, tt, consensus.TopologyOptions{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed uint64) bool {
		ms := make([]*Gossip, n)
		ps := make([]sim.Protocol, n)
		for i := 0; i < n; i++ {
			ms[i] = New(i, top, Rumor(seed)+Rumor(i))
			ps[i] = ms[i]
		}
		res, err := sim.Run(sim.Config{
			Protocols: ps,
			Fault:     crash.NewRandom(n, tt, 30, seed),
			MaxRounds: ms[0].ScheduleLength() + 4,
		})
		if err != nil {
			return false
		}
		for i, m := range ms {
			if res.Crashed.Contains(i) {
				continue
			}
			if !m.Extant().Present(i) || m.Extant().Rumor(i) != Rumor(seed)+Rumor(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
