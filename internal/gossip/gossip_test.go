package gossip

import (
	"testing"

	"lineartime/internal/consensus"
	"lineartime/internal/crash"
	"lineartime/internal/sim"
)

func runGossip(t *testing.T, n, tt int, adv sim.LinkFault, seed uint64) ([]*Gossip, *sim.Result) {
	t.Helper()
	top, err := consensus.NewTopology(n, tt, consensus.TopologyOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*Gossip, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = New(i, top, Rumor(1000+i))
		ps[i] = ms[i]
	}
	res, err := sim.Run(sim.Config{Protocols: ps, Fault: adv, MaxRounds: ms[0].ScheduleLength() + 5})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return ms, res
}

// checkGossip verifies the §2 gossiping conditions: (1) nodes that
// crashed before sending anything appear in no decided extant set,
// (2) nodes that halted operational appear, with the right rumor, in
// every decided extant set.
func checkGossip(t *testing.T, ms []*Gossip, res *sim.Result, silentCrashed []int) {
	t.Helper()
	silent := make(map[int]bool, len(silentCrashed))
	for _, v := range silentCrashed {
		silent[v] = true
	}
	for i, m := range ms {
		if res.Crashed.Contains(i) {
			continue
		}
		e := m.Extant()
		for j := range ms {
			switch {
			case silent[j]:
				if e.Present(j) {
					t.Fatalf("node %d's extant set contains silently-crashed node %d", i, j)
				}
			case !res.Crashed.Contains(j):
				if !e.Present(j) {
					t.Fatalf("node %d's extant set misses operational node %d", i, j)
				}
				if e.Rumor(j) != Rumor(1000+j) {
					t.Fatalf("node %d has wrong rumor for %d: %d", i, j, e.Rumor(j))
				}
			}
		}
	}
}

func TestGossipNoFaults(t *testing.T) {
	ms, res := runGossip(t, 60, 12, nil, 1)
	checkGossip(t, ms, res, nil)
	// Theorem 9 shape: O(log n log t) rounds.
	if res.Metrics.Rounds > 400 {
		t.Fatalf("rounds = %d, far above O(log n · log t)", res.Metrics.Rounds)
	}
}

func TestGossipSilentCrashes(t *testing.T) {
	// Nodes crashed at round 0 with no deliveries must be excluded.
	n, tt := 60, 12
	var events []crash.Event
	var silent []int
	for i := 0; i < tt; i++ {
		v := 3 + 5*i // mixed little and non-little victims
		events = append(events, crash.Event{Node: v, Round: 0, Keep: 0})
		silent = append(silent, v)
	}
	ms, res := runGossip(t, n, tt, crash.NewSchedule(events), 2)
	checkGossip(t, ms, res, silent)
}

func TestGossipRandomCrashes(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		n, tt := 50, 10
		adv := crash.NewRandom(n, tt, 30, seed)
		ms, res := runGossip(t, n, tt, adv, seed+7)
		// Only condition (2) is checkable without knowing which
		// crashed nodes were silent: operational nodes must be
		// everywhere with correct rumors.
		checkGossip(t, ms, res, nil)
	}
}

func TestGossipLittleTargeted(t *testing.T) {
	n, tt := 60, 12
	adv := crash.NewTargetLittle(5*tt, tt, 3)
	ms, res := runGossip(t, n, tt, adv, 4)
	var silent []int
	res.Crashed.ForEach(func(v int) { silent = append(silent, v) })
	checkGossip(t, ms, res, silent)
}

func TestGossipMessageShape(t *testing.T) {
	// Theorem 9: O(n + t log n log t) messages.
	n, tt := 200, 40
	ms, res := runGossip(t, n, tt, nil, 9)
	_ = ms
	logn, logt := 8, 6 // lg 200 ≈ 7.6, lg 40 ≈ 5.3
	limit := int64(24 * (n + tt*logn*logt*20))
	if res.Metrics.Messages > limit {
		t.Fatalf("messages = %d exceed shape bound %d", res.Metrics.Messages, limit)
	}
}

func TestExtantSetOps(t *testing.T) {
	e := NewExtantSet(10)
	e.Update(3, 42)
	e.Update(3, 99) // ignored: pairs are immutable once proper
	if !e.Present(3) || e.Rumor(3) != 42 {
		t.Fatalf("pair (3,42) mangled: present=%v rumor=%d", e.Present(3), e.Rumor(3))
	}
	other := NewExtantSet(10)
	other.Update(5, 7)
	e.MergeFrom(other)
	if !e.Present(5) || e.Rumor(5) != 7 {
		t.Fatal("merge failed")
	}
	if e.Count() != 2 {
		t.Fatalf("count = %d, want 2", e.Count())
	}
	c := e.Clone()
	c.Update(1, 1)
	if e.Present(1) {
		t.Fatal("clone aliases original")
	}
}

func TestPayloadSizes(t *testing.T) {
	e := NewExtantSet(100)
	e.Update(1, 5)
	e.Update(2, 6)
	if got := (ExtantPayload{Set: e}).SizeBits(); got != 100+2*RumorBits {
		t.Fatalf("extant payload bits = %d", got)
	}
	if got := (PairPayload{}).SizeBits(); got != 16+RumorBits {
		t.Fatalf("pair payload bits = %d", got)
	}
}

func TestAllToAllBaseline(t *testing.T) {
	n := 30
	ms := make([]*AllToAll, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = NewAllToAll(i, n, Rumor(1000+i))
		ps[i] = ms[i]
	}
	res, err := sim.Run(sim.Config{Protocols: ps, MaxRounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Messages != int64(n*(n-1)) {
		t.Fatalf("messages = %d, want n(n-1)", res.Metrics.Messages)
	}
	for i, m := range ms {
		for j := 0; j < n; j++ {
			if !m.Extant().Present(j) {
				t.Fatalf("baseline node %d misses %d", i, j)
			}
		}
	}
}

func TestAllToAllWithSilentCrash(t *testing.T) {
	n := 20
	ps := make([]sim.Protocol, n)
	ms := make([]*AllToAll, n)
	for i := 0; i < n; i++ {
		ms[i] = NewAllToAll(i, n, Rumor(i))
		ps[i] = ms[i]
	}
	adv := crash.NewSchedule([]crash.Event{{Node: 4, Round: 0, Keep: 0}})
	res, err := sim.Run(sim.Config{Protocols: ps, Fault: adv, MaxRounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		if res.Crashed.Contains(i) {
			continue
		}
		if m.Extant().Present(4) {
			t.Fatalf("node %d includes silently crashed node 4", i)
		}
	}
}
