// Quickstart: binary consensus among 400 nodes, 66 of which may crash,
// in ~40 lines. This is the Few-Crashes-Consensus algorithm of the
// paper (§4.3): O(t + log n) rounds and O(n + t log t) message bits,
// compared head-to-head against a Θ(n²)-bit flooding protocol on the
// same instance.
package main

import (
	"fmt"
	"log"

	"lineartime"
)

func main() {
	const n, t = 400, 66

	// Inputs: the first half proposes 0, the second half proposes 1.
	inputs := make([]bool, n)
	for i := n / 2; i < n; i++ {
		inputs[i] = true
	}

	report, err := lineartime.RunConsensus(n, t, inputs,
		lineartime.WithSeed(42),
		lineartime.WithRandomCrashes(t, 64), // adversary crashes up to t nodes
	)
	if err != nil {
		log.Fatal(err)
	}

	// Same instance, same crash schedule, textbook flooding.
	flooding, err := lineartime.RunConsensus(n, t, inputs,
		lineartime.WithSeed(42),
		lineartime.WithRandomCrashes(t, 64),
		lineartime.WithAlgorithm(lineartime.FloodingBaseline),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("n=%d t=%d crashed=%d\n\n", report.N, report.T, len(report.Crashed))
	fmt.Printf("%-22s %8s %12s\n", "algorithm", "rounds", "message bits")
	fmt.Printf("%-22s %8d %12d\n", report.Algorithm, report.Metrics.Rounds, report.Metrics.Bits)
	fmt.Printf("%-22s %8d %12d\n", flooding.Algorithm, flooding.Metrics.Rounds, flooding.Metrics.Bits)
	fmt.Printf("\ncommunication saved: %.1fx\n",
		float64(flooding.Metrics.Bits)/float64(report.Metrics.Bits))
	fmt.Printf("agreement: %v, validity: %v\n", report.Agreement, report.Validity)

	for i, d := range report.Decisions {
		if d >= 0 {
			fmt.Printf("first surviving node: %d decided %d\n", i, d)
			break
		}
	}
}
