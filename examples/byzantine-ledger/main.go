// Byzantine-ledger: authenticated Byzantine agreement on the next
// ledger entry among 120 replicas of which up to 10 are malicious —
// the AB-Consensus algorithm of §7.
//
// Each honest replica proposes a (numeric) candidate entry; corrupted
// replicas try three strategies in turn: staying silent, equivocating
// (signing two different entries to different peers), and spamming
// fabricated "authenticated" sets that claim a giant bogus entry. The
// run demonstrates that agreement lands on a real proposal every time,
// that the bogus entry never wins, and that the non-faulty message
// count stays near the O(t² + n) bound rather than the Θ(n²) of
// running Dolev–Strong among all replicas.
package main

import (
	"fmt"
	"log"

	"lineartime"
)

func main() {
	const n, t = 120, 10

	proposals := make([]uint64, n)
	for i := range proposals {
		proposals[i] = uint64(5000 + i) // candidate ledger entries
	}

	corrupted := make([]int, 0, t)
	for i := 0; i < t; i++ {
		corrupted = append(corrupted, 3*i) // spread through the little nodes
	}

	for _, strat := range []struct {
		name string
		s    lineartime.ByzantineStrategy
	}{
		{"silence", lineartime.Silence},
		{"equivocate", lineartime.Equivocate},
		{"spam", lineartime.Spam},
	} {
		report, err := lineartime.RunByzantineConsensus(n, t, proposals, false,
			lineartime.WithSeed(7),
			lineartime.WithByzantine(strat.s, corrupted...),
		)
		if err != nil {
			log.Fatal(err)
		}
		if !report.Agreement {
			log.Fatalf("%s: replicas disagree on the ledger entry", strat.name)
		}
		var entry uint64
		for i, ok := range report.Decided {
			if ok {
				entry = report.Decisions[i]
				break
			}
		}
		if entry >= 1<<32 {
			log.Fatalf("%s: fabricated entry %d committed", strat.name, entry)
		}
		fmt.Printf("strategy=%-10s committed entry %d | rounds=%d honest-msgs=%d byz-msgs=%d\n",
			strat.name, entry, report.Metrics.Rounds,
			report.Metrics.Messages, report.Metrics.ByzMessages)
	}

	// Cost comparison against Dolev–Strong run by every replica.
	ab, err := lineartime.RunByzantineConsensus(n, t, proposals, false, lineartime.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	ds, err := lineartime.RunByzantineConsensus(n, t, proposals, true, lineartime.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfault-free cost: AB-Consensus %d msgs vs all-nodes Dolev–Strong %d msgs (%.1fx)\n",
		ab.Metrics.Messages, ds.Metrics.Messages,
		float64(ds.Metrics.Messages)/float64(ab.Metrics.Messages))
}
