// Singleport: consensus when a node can touch only ONE port per round
// (§8) — the model of serial NICs or token-budgeted networks. A node
// may send at most one message and poll at most one in-port per round;
// ports buffer silently.
//
// The example runs Linear-Consensus across a range of fault bounds and
// prints rounds against the Θ(t + log n) lower bound of Theorem 13,
// showing the linear-in-t profile with the compilation constant, and
// that communication stays linear in n.
package main

import (
	"fmt"
	"log"
	"math"

	"lineartime"
)

func main() {
	const n = 120

	fmt.Printf("single-port consensus, n=%d (lower bound: Ω(t + log n))\n\n", n)
	fmt.Printf("%6s %10s %18s %12s %10s\n", "t", "rounds", "rounds/(t+lg n)", "bits", "bits/n")
	for _, t := range []int{4, 8, 12, 16, 20, 24} {
		inputs := make([]bool, n)
		for i := range inputs {
			inputs[i] = i%2 == 0
		}
		report, err := lineartime.RunConsensus(n, t, inputs,
			lineartime.WithSeed(11),
			lineartime.WithAlgorithm(lineartime.SinglePortLinear),
			lineartime.WithRandomCrashes(t, 4*t),
		)
		if err != nil {
			log.Fatal(err)
		}
		if !report.Agreement || !report.Validity {
			log.Fatalf("t=%d: correctness violated", t)
		}
		denom := float64(t) + math.Log2(float64(n))
		fmt.Printf("%6d %10d %18.1f %12d %10.1f\n",
			t, report.Metrics.Rounds,
			float64(report.Metrics.Rounds)/denom,
			report.Metrics.Bits,
			float64(report.Metrics.Bits)/float64(n))
	}
	fmt.Println("\nthe rounds/(t+lg n) column flattens: the compiled schedule is Θ(t + log n),")
	fmt.Println("matching the Theorem 13 lower bound up to the 2d/2∆ port-multiplexing constant.")
}
