// Majority-poll: the §9 extension — a fault-tolerant referendum. 90
// voters, up to 15 may crash mid-poll; all survivors must agree on the
// exact tally, not just the verdict, so an auditor asking any replica
// gets the same numbers.
//
// The poll is intentionally close (46 yes / 44 no) and the adversary
// crashes yes-voters, demonstrating the subtle point: the agreed
// ballot set (who counts) is itself agreed upon, so a voter that died
// before being heard is excluded consistently everywhere rather than
// counted by some replicas and not others.
package main

import (
	"fmt"
	"log"

	"lineartime"
)

func main() {
	const n, t = 90, 15

	votes := make([]bool, n)
	for i := 0; i < 46; i++ {
		votes[i] = true // nodes 0..45 vote yes
	}

	// The adversary silences three yes-voters before they can speak
	// and one mid-poll.
	report, err := lineartime.RunMajorityVote(n, t, votes,
		lineartime.WithSeed(2026),
		lineartime.WithCrashSchedule(
			lineartime.CrashEvent{Node: 0, Round: 0, Keep: 0},
			lineartime.CrashEvent{Node: 1, Round: 0, Keep: 0},
			lineartime.CrashEvent{Node: 2, Round: 0, Keep: 0},
			lineartime.CrashEvent{Node: 3, Round: 30, Keep: 2},
		),
	)
	if err != nil {
		log.Fatal(err)
	}
	if !report.Agreement {
		log.Fatal("replicas disagree on the tally")
	}

	fmt.Printf("electorate: %d, crash bound: %d, crashed: %d\n", n, t, len(report.Crashed))
	fmt.Printf("agreed tally: %d yes of %d counted ballots\n", report.YesVotes, report.Ballots)
	fmt.Printf("verdict:      yes wins = %v\n", report.YesWins)
	fmt.Printf("cost:         %d rounds, %d messages\n",
		report.Metrics.Rounds, report.Metrics.Messages)

	// The silenced yes-voters must be consistently excluded.
	if report.Ballots > n-3 {
		log.Fatalf("silenced voters leaked into the ballot set (%d ballots)", report.Ballots)
	}
	fmt.Println("\nevery replica reports identical numbers — audit-stable under crashes")
}
