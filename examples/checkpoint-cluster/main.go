// Checkpoint-cluster: the paper's motivating use of checkpointing —
// a compute cluster periodically agreeing on exactly which workers are
// still alive so a computation can be resumed from a consistent
// membership snapshot after failures.
//
// The simulation runs three checkpoint epochs over a 150-worker
// cluster. Between epochs, machines die (some silently at the instant
// the epoch starts — those must be excluded from the snapshot; some
// mid-epoch — those may appear, which is safe because they
// demonstrably participated). The example prints each epoch's agreed
// extant set and the communication cost, next to what the direct
// O(t·n²) exchange would have cost.
package main

import (
	"fmt"
	"log"

	"lineartime"
)

func main() {
	const n, t = 150, 25

	// Epochs with increasing damage. Keep=0 crashes are "silent": the
	// worker dies before sending anything in the epoch.
	epochs := [][]lineartime.CrashEvent{
		{},
		{
			{Node: 7, Round: 0, Keep: 0}, // died silently before the epoch
			{Node: 33, Round: 0, Keep: 0},
			{Node: 90, Round: 5, Keep: 2}, // died mid-epoch, partially heard
		},
		{
			{Node: 11, Round: 0, Keep: 0},
			{Node: 58, Round: 0, Keep: 0},
			{Node: 59, Round: 0, Keep: 0},
			{Node: 101, Round: 12, Keep: -1},
			{Node: 140, Round: 40, Keep: 1},
		},
	}

	for epoch, events := range epochs {
		report, err := lineartime.RunCheckpointing(n, t, false,
			lineartime.WithSeed(uint64(1000+epoch)),
			lineartime.WithCrashSchedule(events...),
		)
		if err != nil {
			log.Fatal(err)
		}
		baseline, err := lineartime.RunCheckpointing(n, t, true,
			lineartime.WithSeed(uint64(1000+epoch)),
			lineartime.WithCrashSchedule(events...),
		)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== epoch %d: %d crash events ==\n", epoch, len(events))
		if !report.Agreement {
			log.Fatalf("epoch %d: snapshot disagreement", epoch)
		}
		fmt.Printf("agreed live set: %d/%d workers\n", len(report.ExtantSet), n)
		excluded := make(map[int]bool, n)
		for _, w := range report.ExtantSet {
			excluded[w] = true
		}
		for _, e := range events {
			if e.Round == 0 && e.Keep == 0 && excluded[e.Node] {
				log.Fatalf("epoch %d: silently dead worker %d in snapshot", epoch, e.Node)
			}
		}
		fmt.Printf("cost: %d rounds, %d messages (direct exchange: %d messages, %.1fx more)\n\n",
			report.Metrics.Rounds, report.Metrics.Messages,
			baseline.Metrics.Messages,
			float64(baseline.Metrics.Messages)/float64(report.Metrics.Messages))
	}
	fmt.Println("all epochs checkpointed consistently")
}
