// Service client: query a running linearsimd daemon and watch the
// content-addressed cache work. The same scenario is requested twice —
// the first response costs an engine run (X-Cache: miss), the repeat
// is served from the cache (X-Cache: hit) with a byte-identical body,
// typically orders of magnitude faster.
//
// Start a daemon first:
//
//	go run ./cmd/linearsimd -addr 127.0.0.1:8372
//
// then:
//
//	go run ./examples/service-client -addr http://127.0.0.1:8372
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8372", "linearsimd base URL")
	flag.Parse()

	request := map[string]any{
		"scenario": "consensus/few-crashes",
		"n":        400,
		"t":        66,
		"seed":     42,
		"fault":    "random-crashes:count=66,horizon=64",
	}
	body, err := json.Marshal(request)
	if err != nil {
		log.Fatal(err)
	}

	var first []byte
	for attempt := 1; attempt <= 2; attempt++ {
		start := time.Now()
		resp, err := http.Post(*addr+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatalf("is linearsimd running at %s? %v", *addr, err)
		}
		payload, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("status %d: %s", resp.StatusCode, payload)
		}
		fmt.Printf("request %d: %-4s in %v\n", attempt, resp.Header.Get("X-Cache"), time.Since(start).Round(time.Microsecond))
		if attempt == 1 {
			first = payload
			var env struct {
				Key    string `json:"key"`
				Report struct {
					Metrics struct {
						Rounds   int   `json:"rounds"`
						Messages int64 `json:"messages"`
					} `json:"metrics"`
					Consensus struct {
						Agreement bool `json:"agreement"`
					} `json:"consensus"`
				} `json:"report"`
			}
			if err := json.Unmarshal(payload, &env); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  key       %s\n", env.Key)
			fmt.Printf("  rounds    %d, messages %d, agreement %v\n",
				env.Report.Metrics.Rounds, env.Report.Metrics.Messages, env.Report.Consensus.Agreement)
		} else if !bytes.Equal(first, payload) {
			log.Fatal("cache hit was not byte-identical to the original response")
		} else {
			fmt.Println("  body      byte-identical to request 1 (as determinism guarantees)")
		}
	}
}
