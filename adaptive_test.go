package lineartime

import (
	"testing"

	"lineartime/internal/consensus"
	"lineartime/internal/crash"
	"lineartime/internal/gossip"
	"lineartime/internal/sim"
)

// The adaptive adversary (crash the busiest sender, repeatedly) is the
// harshest strategy the crash model admits: it decapitates whatever
// communication backbone the protocol relies on. These tests run the
// full stacks against it.

func TestFewCrashesUnderAdaptiveAdversary(t *testing.T) {
	n, tt := 80, 16
	top, err := consensus.NewTopology(n, tt, consensus.TopologyOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	inputs := boolInputs(n, func(i int) bool { return i%2 == 0 })
	ms := make([]*consensus.FewCrashes, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = consensus.NewFewCrashes(i, top, inputs[i])
		ps[i] = ms[i]
	}
	res, err := sim.Run(sim.Config{
		Protocols: ps,
		Fault:     crash.NewAdaptive(tt, 3),
		MaxRounds: ms[0].ScheduleLength() + 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed.Count() == 0 {
		t.Fatal("adaptive adversary crashed nobody")
	}
	var agreed *bool
	for i, m := range ms {
		if res.Crashed.Contains(i) {
			continue
		}
		v, ok := m.Decision()
		if !ok {
			t.Fatalf("node %d undecided under adaptive attack", i)
		}
		if agreed == nil {
			agreed = &v
		} else if *agreed != v {
			t.Fatal("disagreement under adaptive attack")
		}
	}
}

func TestGossipUnderAdaptiveAdversary(t *testing.T) {
	n, tt := 60, 12
	top, err := consensus.NewTopology(n, tt, consensus.TopologyOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*gossip.Gossip, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = gossip.New(i, top, gossip.Rumor(500+i))
		ps[i] = ms[i]
	}
	res, err := sim.Run(sim.Config{
		Protocols: ps,
		Fault:     crash.NewAdaptive(tt, 2),
		MaxRounds: ms[0].ScheduleLength() + 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range ms {
		if res.Crashed.Contains(i) {
			continue
		}
		for j := 0; j < n; j++ {
			if !res.Crashed.Contains(j) && !m.Extant().Present(j) {
				t.Fatalf("node %d misses operational %d under adaptive attack", i, j)
			}
		}
	}
}
