package lineartime

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Golden regression tests: every run is deterministic given its seed,
// so the exact metrics of fixed configurations are frozen in
// testdata/golden.json. An unintended change to any protocol, overlay
// construction, adversary or the engine shifts a number here.
// Regenerate intentionally with:
//
//	go test -run TestGolden -update .

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json")

type goldenEntry struct {
	Rounds   int   `json:"rounds"`
	Messages int64 `json:"messages"`
	Bits     int64 `json:"bits"`
	Crashed  int   `json:"crashed"`
}

func goldenRuns(t *testing.T) map[string]goldenEntry {
	t.Helper()
	got := make(map[string]goldenEntry)

	record := func(name string, m Metrics, crashed int) {
		got[name] = goldenEntry{
			Rounds:   m.Rounds,
			Messages: m.Messages,
			Bits:     m.Bits,
			Crashed:  crashed,
		}
	}

	inputs := boolInputs(60, func(i int) bool { return i%3 == 0 })
	for _, algo := range []Algorithm{FewCrashes, ManyCrashes, FloodingBaseline, EarlyStoppingBaseline, CoordinatorBaseline, SinglePortLinear} {
		r, err := RunConsensus(60, 12, inputs,
			WithSeed(1), WithAlgorithm(algo), WithRandomCrashes(12, 30))
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !r.Agreement || !r.Validity {
			t.Fatalf("%v: correctness violated", algo)
		}
		record("consensus/"+algo.String(), r.Metrics, len(r.Crashed))
	}

	rumors := make([]uint64, 60)
	for i := range rumors {
		rumors[i] = uint64(i)
	}
	g, err := RunGossip(60, 12, rumors, false, WithSeed(1), WithRandomCrashes(12, 30))
	if err != nil {
		t.Fatal(err)
	}
	record("gossip/multi-port", g.Metrics, len(g.Crashed))

	gs, err := RunGossip(60, 12, rumors, false, WithSeed(1), WithSinglePortModel())
	if err != nil {
		t.Fatal(err)
	}
	record("gossip/single-port", gs.Metrics, len(gs.Crashed))

	c, err := RunCheckpointing(60, 12, false, WithSeed(1), WithRandomCrashes(12, 30))
	if err != nil {
		t.Fatal(err)
	}
	record("checkpointing/multi-port", c.Metrics, len(c.Crashed))

	byzInputs := make([]uint64, 60)
	for i := range byzInputs {
		byzInputs[i] = uint64(100 + i)
	}
	b, err := RunByzantineConsensus(60, 6, byzInputs, false,
		WithSeed(1), WithByzantine(Equivocate, 0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	record("byzantine/ab-consensus", b.Metrics, 0)

	votes := boolInputs(60, func(i int) bool { return i < 35 })
	m, err := RunMajorityVote(60, 12, votes, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	record("majority/vote", m.Metrics, len(m.Crashed))

	return got
}

func TestGoldenMetrics(t *testing.T) {
	path := filepath.Join("testdata", "golden.json")
	got := goldenRuns(t)

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten with %d entries", len(got))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden file has %d entries, runs produced %d", len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: missing from runs", name)
			continue
		}
		if g != w {
			t.Errorf("%s: metrics drifted:\n got %+v\nwant %+v", name, g, w)
		}
	}
}
