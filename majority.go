package lineartime

import (
	"fmt"

	"lineartime/internal/consensus"
	"lineartime/internal/majority"
	"lineartime/internal/sim"
)

// MajorityReport is the outcome of RunMajorityVote.
type MajorityReport struct {
	N, T    int
	Metrics Metrics
	Crashed []int
	// YesWins is the agreed verdict; YesVotes/Ballots the agreed tally.
	YesWins  bool
	YesVotes int
	Ballots  int
	// Agreement reports whether all surviving nodes reached the same
	// verdict and tally.
	Agreement bool
}

// RunMajorityVote runs the §9 majority-consensus extension: every node
// casts a binary vote; all surviving nodes agree on the exact tally
// over an agreed ballot set that contains every survivor, and on the
// verdict "strictly more than half voted yes". t < n/5.
func RunMajorityVote(n, t int, votes []bool, opts ...Option) (*MajorityReport, error) {
	if len(votes) != n {
		return nil, fmt.Errorf("lineartime: %d votes for n=%d", len(votes), n)
	}
	o := buildOptions(opts)
	top, err := consensus.NewTopology(n, t, consensus.TopologyOptions{Seed: o.seed, Degree: o.degree})
	if err != nil {
		return nil, err
	}
	ms := make([]*majority.Vote, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = majority.New(i, top, votes[i])
		ps[i] = ms[i]
	}
	res, err := runEngine(o, sim.Config{
		Protocols:   ps,
		PartLabeler: partLabelerOf(ps),
		Adversary:   o.adversary(n, t),
		MaxRounds:   ms[0].ScheduleLength() + 8,
	})
	if err != nil {
		return nil, err
	}
	report := &MajorityReport{
		N:         n,
		T:         t,
		Metrics:   toMetrics(res),
		Crashed:   res.Crashed.Elements(),
		Agreement: true,
	}
	first := false
	for i := 0; i < n; i++ {
		if res.Crashed.Contains(i) {
			continue
		}
		verdict, yes, ballots, ok := ms[i].Verdict()
		if !ok {
			report.Agreement = false
			continue
		}
		if !first {
			report.YesWins = verdict == majority.Yes
			report.YesVotes = yes
			report.Ballots = ballots
			first = true
			continue
		}
		if (verdict == majority.Yes) != report.YesWins ||
			yes != report.YesVotes || ballots != report.Ballots {
			report.Agreement = false
		}
	}
	return report, nil
}
