package lineartime

import (
	"fmt"

	"lineartime/internal/scenario"
)

// MajorityReport is the outcome of RunMajorityVote.
type MajorityReport struct {
	N, T    int
	Metrics Metrics
	Crashed []int
	// YesWins is the agreed verdict; YesVotes/Ballots the agreed tally.
	YesWins  bool
	YesVotes int
	Ballots  int
	// Agreement reports whether all surviving nodes reached the same
	// verdict and tally.
	Agreement bool
}

// RunMajorityVote runs the §9 majority-consensus extension: every node
// casts a binary vote; all surviving nodes agree on the exact tally
// over an agreed ballot set that contains every survivor, and on the
// verdict "strictly more than half voted yes". t < n/5.
func RunMajorityVote(n, t int, votes []bool, opts ...Option) (*MajorityReport, error) {
	if len(votes) != n {
		return nil, fmt.Errorf("lineartime: %d votes for n=%d", len(votes), n)
	}
	o := buildOptions(opts)
	sp := o.spec("majority/expander", n, t)
	sp.BoolInputs = votes
	rep, err := scenario.Run(sp)
	if err != nil {
		return nil, apiErr(err)
	}
	return &MajorityReport{
		N:         n,
		T:         t,
		Metrics:   toMetrics(rep.Metrics),
		Crashed:   rep.Crashed,
		YesWins:   rep.Majority.YesWins,
		YesVotes:  rep.Majority.YesVotes,
		Ballots:   rep.Majority.Ballots,
		Agreement: rep.Majority.Agreement,
	}, nil
}
