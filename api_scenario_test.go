package lineartime

import (
	"reflect"
	"strings"
	"testing"
)

// TestScenarioErrorsKeepPublicPrefix pins the API error contract:
// validation errors surfacing from the internal scenario layer must
// carry the package's documented "lineartime:" prefix, not leak the
// internal "scenario:" one.
func TestScenarioErrorsKeepPublicPrefix(t *testing.T) {
	_, err := RunByzantineConsensus(10, 2, make([]uint64, 10), false, WithByzantine(Silence, 99))
	if err == nil {
		t.Fatal("out-of-range corrupted node accepted")
	}
	if !strings.HasPrefix(err.Error(), "lineartime: ") {
		t.Fatalf("error leaked the internal prefix: %v", err)
	}
	_, err = RunGossip(40, 6, make([]uint64, 40), false,
		WithSinglePortModel(), WithConcurrentRuntime())
	if err == nil {
		t.Fatal("single-port parallel run accepted")
	}
	if !strings.HasPrefix(err.Error(), "lineartime: ") {
		t.Fatalf("error leaked the internal prefix: %v", err)
	}
}

// TestByzantineConsensusHonorsParallelism is the regression test for
// the pre-refactor gap where RunByzantineConsensus called sim.Run
// directly and silently ignored WithParallelism while RunConsensus
// honored it. Through the unified scenario runner both engines must be
// reachable and produce identical reports.
func TestByzantineConsensusHonorsParallelism(t *testing.T) {
	n, tt := 60, 3
	inputs := make([]uint64, n)
	for i := range inputs {
		inputs[i] = uint64(100 + i)
	}
	serial, err := RunByzantineConsensus(n, tt, inputs, false,
		WithSeed(2), WithByzantine(Equivocate, 0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Agreement {
		t.Fatal("serial byzantine run lost agreement")
	}
	for _, workers := range []int{1, 4} {
		par, err := RunByzantineConsensus(n, tt, inputs, false,
			WithSeed(2), WithByzantine(Equivocate, 0, 1, 2), WithParallelism(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: parallel report diverged from serial:\n%+v\nvs\n%+v",
				workers, par, serial)
		}
	}
	conc, err := RunByzantineConsensus(n, tt, inputs, false,
		WithSeed(2), WithByzantine(Equivocate, 0, 1, 2), WithConcurrentRuntime())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, conc) {
		t.Fatal("WithConcurrentRuntime byzantine report diverged from serial")
	}
}

// TestMajorityVoteHonorsParallelism extends the same guarantee to the
// fifth entry point, which also routes through the scenario runner
// now.
func TestMajorityVoteHonorsParallelism(t *testing.T) {
	n, tt := 60, 10
	votes := make([]bool, n)
	for i := range votes {
		votes[i] = i%2 == 0
	}
	serial, err := RunMajorityVote(n, tt, votes, WithSeed(4), WithRandomCrashes(tt, 20))
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunMajorityVote(n, tt, votes, WithSeed(4), WithRandomCrashes(tt, 20), WithParallelism(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel majority report diverged from serial:\n%+v\nvs\n%+v", par, serial)
	}
}
