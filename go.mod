module lineartime

go 1.24
