package lineartime

import (
	"testing"
)

// Cross-engine equivalence: the sequential engine and the concurrent
// goroutine-per-node runtime must produce identical metrics and
// decisions for full protocol stacks, not just toy protocols.
func TestCrossEngineConsensus(t *testing.T) {
	n, tt := 60, 12
	inputs := boolInputs(n, func(i int) bool { return i%5 == 0 })
	for _, algo := range []Algorithm{FewCrashes, ManyCrashes, FloodingBaseline, EarlyStoppingBaseline} {
		t.Run(algo.String(), func(t *testing.T) {
			seq, err := RunConsensus(n, tt, inputs,
				WithSeed(9), WithAlgorithm(algo), WithRandomCrashes(tt, 30))
			if err != nil {
				t.Fatal(err)
			}
			con, err := RunConsensus(n, tt, inputs,
				WithSeed(9), WithAlgorithm(algo), WithRandomCrashes(tt, 30),
				WithConcurrentRuntime())
			if err != nil {
				t.Fatal(err)
			}
			if !metricsEqual(seq.Metrics, con.Metrics) {
				t.Fatalf("metrics differ:\nseq %+v\ncon %+v", seq.Metrics, con.Metrics)
			}
			for i := range seq.Decisions {
				if seq.Decisions[i] != con.Decisions[i] {
					t.Fatalf("node %d decision differs: %d vs %d",
						i, seq.Decisions[i], con.Decisions[i])
				}
			}
		})
	}
}

func TestCrossEngineGossip(t *testing.T) {
	n, tt := 50, 10
	rumors := make([]uint64, n)
	for i := range rumors {
		rumors[i] = uint64(i * 3)
	}
	seq, err := RunGossip(n, tt, rumors, false, WithSeed(4), WithRandomCrashes(tt, 30))
	if err != nil {
		t.Fatal(err)
	}
	con, err := RunGossip(n, tt, rumors, false, WithSeed(4), WithRandomCrashes(tt, 30),
		WithConcurrentRuntime())
	if err != nil {
		t.Fatal(err)
	}
	if !metricsEqual(seq.Metrics, con.Metrics) {
		t.Fatalf("metrics differ:\nseq %+v\ncon %+v", seq.Metrics, con.Metrics)
	}
	for i := range seq.Extant {
		if (seq.Extant[i] == nil) != (con.Extant[i] == nil) {
			t.Fatalf("node %d liveness differs", i)
		}
		if seq.Extant[i] == nil {
			continue
		}
		if len(seq.Extant[i]) != len(con.Extant[i]) {
			t.Fatalf("node %d extant sizes differ: %d vs %d",
				i, len(seq.Extant[i]), len(con.Extant[i]))
		}
		for k, v := range seq.Extant[i] {
			if con.Extant[i][k] != v {
				t.Fatalf("node %d rumor for %d differs", i, k)
			}
		}
	}
}

func TestCrossEngineCheckpointing(t *testing.T) {
	n, tt := 50, 10
	seq, err := RunCheckpointing(n, tt, false, WithSeed(6),
		WithCrashSchedule(CrashEvent{Node: 3, Round: 0, Keep: 0}))
	if err != nil {
		t.Fatal(err)
	}
	con, err := RunCheckpointing(n, tt, false, WithSeed(6),
		WithCrashSchedule(CrashEvent{Node: 3, Round: 0, Keep: 0}),
		WithConcurrentRuntime())
	if err != nil {
		t.Fatal(err)
	}
	if !metricsEqual(seq.Metrics, con.Metrics) {
		t.Fatalf("metrics differ:\nseq %+v\ncon %+v", seq.Metrics, con.Metrics)
	}
	if len(seq.ExtantSet) != len(con.ExtantSet) {
		t.Fatal("extant sets differ across engines")
	}
	for i := range seq.ExtantSet {
		if seq.ExtantSet[i] != con.ExtantSet[i] {
			t.Fatal("extant set members differ across engines")
		}
	}
}

// Determinism: identical configuration twice gives identical reports.
func TestRunsAreDeterministic(t *testing.T) {
	n, tt := 50, 10
	inputs := boolInputs(n, func(i int) bool { return i%4 == 0 })
	a, err := RunConsensus(n, tt, inputs, WithSeed(123), WithRandomCrashes(tt, 40))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConsensus(n, tt, inputs, WithSeed(123), WithRandomCrashes(tt, 40))
	if err != nil {
		t.Fatal(err)
	}
	if !metricsEqual(a.Metrics, b.Metrics) {
		t.Fatalf("metrics not deterministic: %+v vs %+v", a.Metrics, b.Metrics)
	}
	for i := range a.Decisions {
		if a.Decisions[i] != b.Decisions[i] {
			t.Fatal("decisions not deterministic")
		}
	}
	// A different seed must change something observable (the crash
	// schedule at minimum).
	c, err := RunConsensus(n, tt, inputs, WithSeed(124), WithRandomCrashes(tt, 40))
	if err != nil {
		t.Fatal(err)
	}
	if metricsEqual(a.Metrics, c.Metrics) && equalInts(a.Crashed, c.Crashed) {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Seed-sweep safety: consensus safety must hold across many seeds and
// adversaries; this is the randomized property test backing the
// protocol invariants.
func TestConsensusSafetySeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	n, tt := 60, 12
	for seed := uint64(0); seed < 12; seed++ {
		inputs := boolInputs(n, func(i int) bool { return (uint64(i)*seed+seed)%3 == 0 })
		for _, algo := range []Algorithm{FewCrashes, ManyCrashes} {
			r, err := RunConsensus(n, tt, inputs,
				WithSeed(seed), WithAlgorithm(algo), WithRandomCrashes(tt, 60))
			if err != nil {
				t.Fatalf("seed %d algo %v: %v", seed, algo, err)
			}
			if !r.Agreement || !r.Validity {
				t.Fatalf("seed %d algo %v: agreement=%v validity=%v",
					seed, algo, r.Agreement, r.Validity)
			}
		}
	}
}

// metricsEqual compares two Metrics including the per-part breakdown.
func metricsEqual(a, b Metrics) bool {
	if a.Rounds != b.Rounds || a.Messages != b.Messages ||
		a.Bits != b.Bits || a.ByzMessages != b.ByzMessages {
		return false
	}
	if len(a.PerPart) != len(b.PerPart) {
		return false
	}
	for k, v := range a.PerPart {
		if b.PerPart[k] != v {
			return false
		}
	}
	return true
}
