package lineartime

import (
	"math"
	"testing"
)

// TestLargeScaleSmoke runs the full consensus stack at n = 4096 — an
// order of magnitude beyond the sweep sizes — to catch accidental
// quadratic blowups in the engine or overlay construction. Skipped in
// -short mode.
func TestLargeScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale smoke skipped in -short mode")
	}
	n := 4096
	tt := n / 8
	inputs := boolInputs(n, func(i int) bool { return i%7 == 0 })
	r, err := RunConsensus(n, tt, inputs,
		WithSeed(1), WithRandomCrashes(tt, 5*tt))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Agreement || !r.Validity {
		t.Fatalf("agreement=%v validity=%v at n=%d", r.Agreement, r.Validity, n)
	}
	// Bits per node should stay in the same band as the n=2048 sweep
	// (~210 bits/node): a quadratic leak would blow this up.
	perNode := float64(r.Metrics.Bits) / float64(n)
	if perNode > 600 {
		t.Fatalf("bits per node = %.1f at n=%d; communication no longer linear", perNode, n)
	}
	if r.Metrics.Rounds > 6*tt+int(8*math.Log2(float64(n))) {
		t.Fatalf("rounds = %d beyond the O(t + log n) band", r.Metrics.Rounds)
	}
}

// TestSCVHolderThreshold characterizes the 3/5 contract of
// Spread-Common-Value: with ≥ 3n/5 holders every node decides; the
// algorithm still completes (and in practice converges) below the
// threshold as long as some little holders exist, because the fallback
// phase reaches them — the guarantee, not the mechanism, is what the
// threshold buys.
func TestSCVHolderThreshold(t *testing.T) {
	n, tt := 100, 20
	run := func(holders int) int {
		r, err := RunConsensus(n, tt, boolInputs(n, func(i int) bool { return i < holders }),
			WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		if !r.Agreement {
			t.Fatalf("holders=%d: disagreement", holders)
		}
		decided := 0
		for _, d := range r.Decisions {
			if d >= 0 {
				decided++
			}
		}
		return decided
	}
	if got := run(3 * n / 5); got != n {
		t.Fatalf("3n/5 inputs: %d/%d decided", got, n)
	}
	if got := run(n / 5); got != n {
		t.Fatalf("n/5 inputs: %d/%d decided", got, n)
	}
}
