package lineartime

import (
	"testing"
)

func TestRunConsensusEarlyStopping(t *testing.T) {
	n, tt := 40, 10
	inputs := boolInputs(n, func(i int) bool { return i%2 == 0 })
	r, err := RunConsensus(n, tt, inputs,
		WithSeed(2),
		WithAlgorithm(EarlyStoppingBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Agreement || !r.Validity {
		t.Fatalf("agreement=%v validity=%v", r.Agreement, r.Validity)
	}
	// With zero crashes the early-stopping baseline finishes in O(1)
	// rounds — its distinguishing feature.
	if r.Metrics.Rounds > 6 {
		t.Fatalf("early stopping took %d rounds with no crashes", r.Metrics.Rounds)
	}

	crashed, err := RunConsensus(n, tt, inputs,
		WithSeed(2),
		WithAlgorithm(EarlyStoppingBaseline),
		WithRandomCrashes(tt, tt))
	if err != nil {
		t.Fatal(err)
	}
	if !crashed.Agreement || !crashed.Validity {
		t.Fatal("early stopping broke under crashes")
	}
}

func TestRunGossipSinglePort(t *testing.T) {
	n, tt := 50, 10
	rumors := make([]uint64, n)
	for i := range rumors {
		rumors[i] = uint64(777 + i)
	}
	r, err := RunGossip(n, tt, rumors, false,
		WithSeed(3),
		WithSinglePortModel(),
		WithCrashSchedule(CrashEvent{Node: 8, Round: 0, Keep: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Complete {
		t.Fatal("single-port gossip incomplete")
	}
	for i, view := range r.Extant {
		if view == nil {
			continue
		}
		if _, ok := view[8]; ok {
			t.Fatalf("node %d includes silently-crashed node 8", i)
		}
	}
	// Single-port rounds far exceed multi-port (port multiplexing).
	multi, err := RunGossip(n, tt, rumors, false, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics.Rounds <= multi.Metrics.Rounds {
		t.Fatalf("single-port rounds %d ≤ multi-port %d", r.Metrics.Rounds, multi.Metrics.Rounds)
	}
}

func TestRunCheckpointingSinglePort(t *testing.T) {
	n, tt := 50, 10
	r, err := RunCheckpointing(n, tt, false,
		WithSeed(4),
		WithSinglePortModel(),
		WithCrashSchedule(CrashEvent{Node: 6, Round: 0, Keep: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Agreement {
		t.Fatal("single-port checkpointing disagreement")
	}
	for _, v := range r.ExtantSet {
		if v == 6 {
			t.Fatal("silently-crashed node in single-port extant set")
		}
	}
}

func TestRunMajorityVote(t *testing.T) {
	n, tt := 60, 12
	votes := boolInputs(n, func(i int) bool { return i < 40 })
	r, err := RunMajorityVote(n, tt, votes, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Agreement {
		t.Fatal("majority disagreement")
	}
	if !r.YesWins || r.YesVotes != 40 || r.Ballots != 60 {
		t.Fatalf("tally %d/%d yesWins=%v, want 40/60 yes", r.YesVotes, r.Ballots, r.YesWins)
	}

	minority, err := RunMajorityVote(n, tt, boolInputs(n, func(i int) bool { return i < 20 }),
		WithSeed(5), WithRandomCrashes(tt, 40))
	if err != nil {
		t.Fatal(err)
	}
	if !minority.Agreement {
		t.Fatal("majority disagreement under crashes")
	}
	if minority.YesWins {
		t.Fatal("20/60 yes votes won")
	}
	if _, err := RunMajorityVote(10, 2, nil); err == nil {
		t.Fatal("missing votes accepted")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	cases := map[Algorithm]string{
		FewCrashes:            "few-crashes",
		ManyCrashes:           "many-crashes",
		FloodingBaseline:      "flooding",
		SinglePortLinear:      "single-port",
		EarlyStoppingBaseline: "early-stopping",
		Algorithm(42):         "Algorithm(42)",
	}
	for a, want := range cases {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(a), got, want)
		}
	}
}
