package lineartime

import (
	"testing"
)

// The per-part breakdown is the measurable form of the paper's
// per-part communication bounds: Theorem 5's proof charges Part 1 at
// most L·d messages, Part 2 at most L·d·γ, Part 3 at most n. These
// tests pin the attribution machinery and the structural bounds.

func TestPerPartBreakdownFewCrashes(t *testing.T) {
	// t = n/10 keeps L = 5t < n, so Part 3 (little → related) has
	// actual targets; with t = n/5 every node is little and the part
	// is legitimately silent.
	n, tt := 100, 10
	const little = 50 // 5t
	inputs := boolInputs(n, func(i int) bool { return i%3 == 0 })
	r, err := RunConsensus(n, tt, inputs, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Metrics.PerPart) == 0 {
		t.Fatal("no per-part breakdown")
	}
	var sum int64
	for _, v := range r.Metrics.PerPart {
		sum += v
	}
	if sum != r.Metrics.Messages {
		t.Fatalf("per-part sum %d != total %d", sum, r.Metrics.Messages)
	}
	for _, part := range []string{"aea/flood", "aea/probing", "aea/notify", "scv/broadcast"} {
		if r.Metrics.PerPart[part] == 0 {
			t.Errorf("part %q recorded no messages: %v", part, r.Metrics.PerPart)
		}
	}
	// Structural bounds from the Theorem 5 proof: Part 1 ≤ L·d,
	// Part 3 ≤ n.
	if got := r.Metrics.PerPart["aea/flood"]; got > int64(little*16) {
		t.Fatalf("aea/flood = %d exceeds L·d", got)
	}
	if got := r.Metrics.PerPart["aea/notify"]; got > int64(n) {
		t.Fatalf("aea/notify = %d exceeds n", got)
	}
}

func TestPerPartBreakdownGossipAndCheckpointing(t *testing.T) {
	n, tt := 60, 12
	rumors := make([]uint64, n)
	for i := range rumors {
		rumors[i] = uint64(i)
	}
	g, err := RunGossip(n, tt, rumors, false, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range []string{"p1/inquiry", "p1/probing", "p2/push", "p2/probing"} {
		if g.Metrics.PerPart[part] == 0 {
			t.Errorf("gossip part %q empty: %v", part, g.Metrics.PerPart)
		}
	}

	c, err := RunCheckpointing(n, tt, false, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	var gossipSum, consSum int64
	for k, v := range c.Metrics.PerPart {
		if len(k) > 7 && k[:7] == "gossip/" {
			gossipSum += v
		} else {
			consSum += v
		}
	}
	if gossipSum == 0 || consSum == 0 {
		t.Fatalf("checkpointing stages not both populated: %v", c.Metrics.PerPart)
	}
	if gossipSum+consSum != c.Metrics.Messages {
		t.Fatalf("stage sums %d+%d != total %d", gossipSum, consSum, c.Metrics.Messages)
	}
}

func TestPerPartBreakdownByzantine(t *testing.T) {
	n, tt := 40, 4
	inputs := make([]uint64, n)
	for i := range inputs {
		inputs[i] = uint64(i)
	}
	r, err := RunByzantineConsensus(n, tt, inputs, false, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range []string{"dolev-strong", "endorse", "notify-related", "propagate"} {
		if r.Metrics.PerPart[part] == 0 {
			t.Errorf("byzantine part %q empty: %v", part, r.Metrics.PerPart)
		}
	}
}

func TestPerPartBreakdownSinglePort(t *testing.T) {
	n, tt := 60, 12
	inputs := boolInputs(n, func(i int) bool { return i%2 == 0 })
	r, err := RunConsensus(n, tt, inputs, WithSeed(4), WithAlgorithm(SinglePortLinear))
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range []string{"flood(2d)", "probing(2d)", "spread(2Δ)"} {
		if r.Metrics.PerPart[part] == 0 {
			t.Errorf("single-port part %q empty: %v", part, r.Metrics.PerPart)
		}
	}
	// The ring sweep should be almost free when H-spreading succeeded.
	if ring := r.Metrics.PerPart["ring-pull"]; ring > int64(4*n) {
		t.Errorf("ring-pull cost %d unexpectedly high", ring)
	}
}
