package lineartime

import (
	"testing"
)

func boolInputs(n int, fn func(i int) bool) []bool {
	in := make([]bool, n)
	for i := range in {
		in[i] = fn(i)
	}
	return in
}

func TestRunConsensusAllAlgorithms(t *testing.T) {
	n, tt := 50, 10
	inputs := boolInputs(n, func(i int) bool { return i%3 == 0 })
	for _, algo := range []Algorithm{FewCrashes, ManyCrashes, FloodingBaseline, SinglePortLinear} {
		t.Run(algo.String(), func(t *testing.T) {
			r, err := RunConsensus(n, tt, inputs, WithAlgorithm(algo), WithSeed(7))
			if err != nil {
				t.Fatal(err)
			}
			if !r.Agreement || !r.Validity {
				t.Fatalf("agreement=%v validity=%v", r.Agreement, r.Validity)
			}
			if r.Metrics.Rounds == 0 || r.Metrics.Messages == 0 {
				t.Fatal("empty metrics")
			}
		})
	}
}

func TestRunConsensusWithCrashes(t *testing.T) {
	n, tt := 50, 10
	inputs := boolInputs(n, func(i int) bool { return i%2 == 0 })
	r, err := RunConsensus(n, tt, inputs,
		WithSeed(3),
		WithRandomCrashes(tt, 30))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Agreement || !r.Validity {
		t.Fatalf("agreement=%v validity=%v with crashes", r.Agreement, r.Validity)
	}
	if len(r.Crashed) == 0 {
		t.Fatal("random adversary crashed nobody")
	}
	for _, c := range r.Crashed {
		if r.Decisions[c] != -1 {
			t.Fatalf("crashed node %d has decision %d", c, r.Decisions[c])
		}
	}
}

func TestRunConsensusSchedule(t *testing.T) {
	n, tt := 40, 8
	inputs := boolInputs(n, func(i int) bool { return i == 0 })
	r, err := RunConsensus(n, tt, inputs,
		WithSeed(1),
		WithCrashSchedule(CrashEvent{Node: 3, Round: 0, Keep: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Crashed) != 1 || r.Crashed[0] != 3 {
		t.Fatalf("crashed = %v, want [3]", r.Crashed)
	}
}

func TestRunConsensusConcurrentRuntime(t *testing.T) {
	n, tt := 40, 8
	inputs := boolInputs(n, func(i int) bool { return i%2 == 0 })
	seq, err := RunConsensus(n, tt, inputs, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	con, err := RunConsensus(n, tt, inputs, WithSeed(5), WithConcurrentRuntime())
	if err != nil {
		t.Fatal(err)
	}
	if !metricsEqual(seq.Metrics, con.Metrics) {
		t.Fatalf("engines disagree: %+v vs %+v", seq.Metrics, con.Metrics)
	}
	if _, err := RunConsensus(n, tt, inputs,
		WithAlgorithm(SinglePortLinear), WithConcurrentRuntime()); err == nil {
		t.Fatal("single-port + concurrent accepted")
	}
}

func TestRunConsensusWithParallelism(t *testing.T) {
	n, tt := 40, 8
	inputs := boolInputs(n, func(i int) bool { return i%2 == 0 })
	seq, err := RunConsensus(n, tt, inputs, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 5} {
		par, err := RunConsensus(n, tt, inputs, WithSeed(5), WithParallelism(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !metricsEqual(seq.Metrics, par.Metrics) {
			t.Fatalf("workers=%d: engines disagree: %+v vs %+v", workers, seq.Metrics, par.Metrics)
		}
	}
	if _, err := RunConsensus(n, tt, inputs,
		WithAlgorithm(SinglePortLinear), WithParallelism(2)); err == nil {
		t.Fatal("single-port + parallelism accepted")
	}
}

func TestRunConsensusValidation(t *testing.T) {
	if _, err := RunConsensus(10, 2, nil); err == nil {
		t.Fatal("missing inputs accepted")
	}
	inputs := boolInputs(10, func(int) bool { return false })
	if _, err := RunConsensus(10, 2, inputs, WithAlgorithm(Algorithm(99))); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := RunConsensus(10, 9, inputs); err == nil {
		t.Fatal("t > n/5 accepted for FewCrashes")
	}
}

func TestRunGossip(t *testing.T) {
	n, tt := 50, 10
	rumors := make([]uint64, n)
	for i := range rumors {
		rumors[i] = uint64(1000 + i)
	}
	r, err := RunGossip(n, tt, rumors, false, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Complete {
		t.Fatal("gossip incomplete without faults")
	}
	if r.Extant[0][7] != 1007 {
		t.Fatalf("rumor of node 7 = %d", r.Extant[0][7])
	}

	base, err := RunGossip(n, tt, rumors, true, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if !base.Complete {
		t.Fatal("baseline gossip incomplete")
	}
	if base.Metrics.Messages != int64(n*(n-1)) {
		t.Fatalf("baseline messages = %d", base.Metrics.Messages)
	}
}

func TestRunCheckpointing(t *testing.T) {
	// n is chosen beyond the algorithm-vs-baseline message crossover
	// (the baseline costs Θ(t·n²); the algorithm Θ(t·log n·log t) with
	// our scaled overlay constants) so the cost comparison below holds.
	n, tt := 120, 24
	r, err := RunCheckpointing(n, tt, false,
		WithSeed(4),
		WithCrashSchedule(CrashEvent{Node: 6, Round: 0, Keep: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Agreement {
		t.Fatal("checkpointing agreement failed")
	}
	for _, v := range r.ExtantSet {
		if v == 6 {
			t.Fatal("silently crashed node 6 in extant set")
		}
	}
	base, err := RunCheckpointing(n, tt, true, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if !base.Agreement {
		t.Fatal("baseline agreement failed")
	}
	if base.Metrics.Messages <= r.Metrics.Messages {
		t.Fatalf("baseline (%d msgs) should cost more than the algorithm (%d msgs)",
			base.Metrics.Messages, r.Metrics.Messages)
	}
}

func TestRunByzantineConsensus(t *testing.T) {
	n, tt := 40, 4
	inputs := make([]uint64, n)
	for i := range inputs {
		inputs[i] = uint64(100 + i)
	}
	r, err := RunByzantineConsensus(n, tt, inputs, false,
		WithSeed(6),
		WithByzantine(Equivocate, 0, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Agreement {
		t.Fatal("byzantine agreement failed")
	}
	for i, ok := range r.Decided {
		if ok && r.Decisions[i] != uint64(100+r.L-1) {
			t.Fatalf("node %d decided %d, want max honest little input", i, r.Decisions[i])
		}
	}
	if r.Metrics.ByzMessages == 0 {
		t.Fatal("equivocators sent nothing")
	}

	base, err := RunByzantineConsensus(n, tt, inputs, true,
		WithSeed(6), WithByzantine(Silence, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !base.Agreement {
		t.Fatal("baseline byzantine agreement failed")
	}
}

func TestRunByzantineValidation(t *testing.T) {
	inputs := make([]uint64, 10)
	if _, err := RunByzantineConsensus(10, 5, inputs, false); err == nil {
		t.Fatal("t = n/2 accepted")
	}
	if _, err := RunByzantineConsensus(10, 2, inputs, false,
		WithByzantine(Silence, 0, 1, 2)); err == nil {
		t.Fatal("more corrupted nodes than t accepted")
	}
	if _, err := RunByzantineConsensus(10, 2, inputs, false,
		WithByzantine(Silence, 99)); err == nil {
		t.Fatal("out-of-range corrupted node accepted")
	}
	if _, err := RunByzantineConsensus(10, 2, inputs[:5], false); err == nil {
		t.Fatal("short inputs accepted")
	}
}
