// Command linearsim runs any registered scenario of the library on a
// simulated synchronous network and prints the paper's two performance
// metrics (rounds, communication) together with the correctness
// verdicts. The -problem/-algo flags resolve to a scenario registry
// name (internal/scenario); -list enumerates the registry.
//
// Any registered fault model can be applied from the CLI with -fault
// (kind[:key=value,...]); -list enumerates the scenarios and the fault
// kinds with their parameter spellings.
//
// Examples:
//
//	linearsim -problem consensus -algo few-crashes -n 200 -t 40 -crashes 40
//	linearsim -problem consensus -algo single-port -n 100 -t 20
//	linearsim -problem consensus -n 200 -t 40 -fault omission:rate=0.05
//	linearsim -problem gossip -n 150 -t 30 -fault delay:d=2
//	linearsim -problem checkpoint -n 150 -t 30 -fault partition:from=1,to=4
//	linearsim -problem byzantine -n 100 -t 10 -byz equivocate -byzcount 10
//	linearsim -problem consensus -algo flooding -n 100 -t 20 -crashes 20 -seeds 64
//	linearsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"lineartime/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "linearsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("linearsim", flag.ContinueOnError)
	var (
		problem  = fs.String("problem", "consensus", "consensus | gossip | checkpoint | byzantine")
		algo     = fs.String("algo", "few-crashes", "consensus algorithm: few-crashes | many-crashes | flooding | single-port | early-stopping | rotating-coordinator")
		n        = fs.Int("n", 100, "number of nodes")
		t        = fs.Int("t", 20, "fault bound")
		seed     = fs.Uint64("seed", 1, "deterministic seed")
		crashes  = fs.Int("crashes", 0, "random crashes to inject (≤ t)")
		horizon  = fs.Int("horizon", 64, "last round at which random crashes may happen")
		baseline = fs.Bool("baseline", false, "run the comparator instead of the paper's algorithm")
		byz      = fs.String("byz", "silence", "byzantine strategy: silence | equivocate | spam")
		byzCount = fs.Int("byzcount", 0, "number of corrupted nodes (byzantine problem)")
		ones     = fs.Int("ones", -1, "consensus: number of nodes with input 1 (-1 = every third)")
		trace    = fs.Bool("trace", false, "attach the run tracer: per-stage timings plus a transcript summary (any scenario); combines with -json")
		list     = fs.Bool("list", false, "list the registered scenarios and fault models, then exit")
		faultArg = fs.String("fault", "", "fault model, kind[:key=value,...] (see -list); overrides -crashes")
		jsonOut  = fs.Bool("json", false, "emit the run as the {key, report} JSON envelope linearsimd serves")
		implicit = fs.Bool("implicit", false, "generate the overlay topology on the fly from a seeded shift construction instead of materializing it (implicit-capable scenarios only, see -list)")
		seeds    = fs.Int("seeds", 1, "run the scenario under this many consecutive seeds (starting at -seed) and print a summary; sliceable scenarios ride the bit-sliced engine 64 seeds per machine word")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return listScenarios()
	}
	if *seeds < 1 {
		return fmt.Errorf("-seeds must be at least 1, got %d", *seeds)
	}
	if *seeds > 1 {
		if *jsonOut {
			return fmt.Errorf("-json emits a single run envelope; it is not available with -seeds > 1")
		}
		if *trace {
			return fmt.Errorf("-trace follows a single run; it is not available with -seeds > 1")
		}
	}
	out := output{json: *jsonOut, trace: *trace}

	fault := scenario.FaultModel{}
	if *crashes > 0 {
		fault = scenario.FaultModel{Kind: scenario.RandomCrashes, Count: *crashes, Horizon: *horizon}
	}
	if *faultArg != "" {
		f, err := scenario.ParseFault(*faultArg)
		if err != nil {
			return err
		}
		fault = f
	}

	switch *problem {
	case "consensus":
		return runConsensus(*algo, *n, *t, *ones, *baseline, *seed, fault, out, *implicit, *seeds)
	case "gossip":
		return runGossip(*n, *t, *baseline, *seed, fault, out, *implicit, *seeds)
	case "checkpoint":
		return runCheckpoint(*n, *t, *baseline, *seed, fault, out, *implicit, *seeds)
	case "byzantine":
		if *faultArg != "" {
			return fmt.Errorf("the byzantine problem configures its faults with -byz/-byzcount, not -fault")
		}
		return runByzantine(*n, *t, *byz, *byzCount, *baseline, *seed, out, *implicit, *seeds)
	default:
		return fmt.Errorf("unknown problem %q", *problem)
	}
}

// runSeedsSummary fans one spec across consecutive seeds through
// scenario.RunSeeds — where the scenario is sliceable the seeds ride
// the bit-sliced engine a machine word at a time — and prints per-seed
// outcome counts plus mean costs over the successful runs.
func runSeedsSummary(kind string, sp scenario.Spec, seeds int) error {
	list := make([]uint64, seeds)
	for i := range list {
		list[i] = sp.Seed + uint64(i)
	}
	reports, errs := scenario.RunSeeds(sp, list)
	counts := make(map[string]int)
	okRuns := 0
	var rounds, msgs, bits float64
	for i := range reports {
		if errs[i] != nil {
			counts["error"]++
			continue
		}
		r := reports[i]
		okRuns++
		rounds += float64(r.Metrics.Rounds)
		msgs += float64(r.Metrics.Messages)
		bits += float64(r.Metrics.Bits)
		counts[seedOutcome(r)]++
	}
	fmt.Printf("%-10s n=%d t=%d seeds=%d (%d..%d)\n", kind, sp.N, sp.T, seeds, list[0], list[len(list)-1])
	labels := make([]string, 0, len(counts))
	for label := range counts {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	fmt.Println("outcomes:")
	for _, label := range labels {
		fmt.Printf("  %-20s %d/%d\n", label, counts[label], seeds)
	}
	if okRuns > 0 {
		k := float64(okRuns)
		fmt.Printf("mean over %d runs:\n", okRuns)
		fmt.Printf("  rounds:    %.1f\n", rounds/k)
		fmt.Printf("  messages:  %.1f\n", msgs/k)
		fmt.Printf("  bits:      %.1f\n", bits/k)
	}
	return nil
}

// seedOutcome labels one run's verdict for the -seeds summary.
func seedOutcome(r *scenario.Report) string {
	switch {
	case r.Consensus != nil:
		if r.Consensus.Agreement && r.Consensus.Validity {
			return "agreement+validity"
		}
		return "violated"
	case r.Gossip != nil:
		if r.Gossip.Complete {
			return "complete"
		}
		return "incomplete"
	case r.Checkpoint != nil:
		if r.Checkpoint.Agreement {
			return "agreement"
		}
		return "disagreement"
	case r.Byzantine != nil:
		if r.Byzantine.Agreement {
			return "agreement"
		}
		return "disagreement"
	default:
		return "done"
	}
}

// applyImplicit switches a spec to the implicit shift topology, or
// explains why the scenario cannot run implicitly.
func applyImplicit(def scenario.Definition, sp *scenario.Spec, implicit bool) error {
	if !implicit {
		return nil
	}
	if !def.SupportsImplicit() {
		return fmt.Errorf("scenario %s does not support implicit topologies (see -list)", def.Name)
	}
	sp.Topology = scenario.TopologyShift
	sp.Implicit = true
	return nil
}

// listScenarios prints the scenario registry and the fault-model
// kinds with their -fault spellings.
func listScenarios() error {
	fmt.Println("scenarios ([implicit] = supports -implicit on-the-fly topologies):")
	for _, name := range scenario.Names() {
		d := scenario.MustLookup(name)
		tag := ""
		if d.SupportsImplicit() {
			tag = "  [implicit]"
		}
		fmt.Printf("  %-34s %s%s\n", d.Name, d.About, tag)
	}
	fmt.Println("\nfault models (-fault kind[:key=value,...]):")
	for _, u := range scenario.FaultUsages() {
		fmt.Printf("  %-44s %s\n", u.Spec, u.About)
	}
	return nil
}

// scenarioForAlgorithm resolves the -algo flag to a registry name.
func scenarioForAlgorithm(name string, baseline bool) (scenario.Definition, error) {
	if baseline {
		return scenario.MustLookup("consensus/flooding"), nil
	}
	switch name {
	case "few-crashes", "many-crashes", "flooding", "single-port", "early-stopping", "rotating-coordinator":
		return scenario.MustLookup("consensus/" + name), nil
	default:
		return scenario.Definition{}, fmt.Errorf("unknown algorithm %q", name)
	}
}

func runConsensus(algoName string, n, t, ones int, baseline bool, seed uint64, fault scenario.FaultModel, out output, implicit bool, seeds int) error {
	def, err := scenarioForAlgorithm(algoName, baseline)
	if err != nil {
		return err
	}
	sp := def.Spec(n, t, seed)
	sp.Fault = fault
	if err := applyImplicit(def, &sp, implicit); err != nil {
		return err
	}
	if ones >= 0 {
		inputs := make([]bool, n)
		for i := range inputs {
			inputs[i] = i < ones
		}
		sp.BoolInputs = inputs
	}
	if seeds > 1 {
		return runSeedsSummary(def.Name, sp, seeds)
	}
	return finishRun(sp, out, func(r *scenario.Report) {
		fmt.Printf("consensus  algo=%-12s n=%d t=%d\n", r.Algorithm, r.N, r.T)
		printMetrics(r.Metrics)
		fmt.Printf("crashed:   %d nodes\n", len(r.Crashed))
		fmt.Printf("agreement: %v   validity: %v\n", r.Consensus.Agreement, r.Consensus.Validity)
	})
}

func runGossip(n, t int, baseline bool, seed uint64, fault scenario.FaultModel, out output, implicit bool, seeds int) error {
	name, kind := "gossip/expander", "gossip(§5)"
	if baseline {
		name, kind = "gossip/all-to-all", "gossip(all-to-all)"
	}
	def := scenario.MustLookup(name)
	sp := def.Spec(n, t, seed)
	sp.Fault = fault
	if err := applyImplicit(def, &sp, implicit); err != nil {
		return err
	}
	rumors := make([]uint64, n)
	for i := range rumors {
		rumors[i] = uint64(1000 + i)
	}
	sp.Rumors = rumors
	if seeds > 1 {
		return runSeedsSummary(kind, sp, seeds)
	}
	return finishRun(sp, out, func(r *scenario.Report) {
		fmt.Printf("%-10s n=%d t=%d\n", kind, r.N, r.T)
		printMetrics(r.Metrics)
		fmt.Printf("crashed:   %d nodes\n", len(r.Crashed))
		fmt.Printf("complete:  %v\n", r.Gossip.Complete)
	})
}

func runCheckpoint(n, t int, baseline bool, seed uint64, fault scenario.FaultModel, out output, implicit bool, seeds int) error {
	name, kind := "checkpoint/expander", "checkpoint(§6)"
	if baseline {
		name, kind = "checkpoint/direct", "checkpoint(direct)"
	}
	def := scenario.MustLookup(name)
	sp := def.Spec(n, t, seed)
	sp.Fault = fault
	if err := applyImplicit(def, &sp, implicit); err != nil {
		return err
	}
	if seeds > 1 {
		return runSeedsSummary(kind, sp, seeds)
	}
	return finishRun(sp, out, func(r *scenario.Report) {
		fmt.Printf("%-10s n=%d t=%d\n", kind, r.N, r.T)
		printMetrics(r.Metrics)
		fmt.Printf("crashed:   %d nodes\n", len(r.Crashed))
		fmt.Printf("agreement: %v   extant set size: %d\n", r.Checkpoint.Agreement, len(r.Checkpoint.ExtantSet))
	})
}

func runByzantine(n, t int, strategy string, count int, baseline bool, seed uint64, out output, implicit bool, seeds int) error {
	var strat scenario.ByzantineStrategy
	switch strategy {
	case "silence":
		strat = scenario.Silence
	case "equivocate":
		strat = scenario.Equivocate
	case "spam":
		strat = scenario.Spam
	default:
		return fmt.Errorf("unknown byzantine strategy %q", strategy)
	}
	if count > t {
		count = t
	}
	corrupted := make([]int, 0, count)
	for i := 0; i < count; i++ {
		corrupted = append(corrupted, i)
	}
	name, kind := "byzantine/ab-consensus", "ab-consensus(§7)"
	if baseline {
		name, kind = "byzantine/dolev-strong-all", "dolev-strong-all"
	}
	def := scenario.MustLookup(name)
	sp := def.Spec(n, t, seed)
	if err := applyImplicit(def, &sp, implicit); err != nil {
		return err
	}
	inputs := make([]uint64, n)
	for i := range inputs {
		inputs[i] = uint64(100 + i)
	}
	sp.Values = inputs
	if count > 0 {
		sp.Fault = scenario.FaultModel{Kind: scenario.ByzantineFaults, Strategy: strat, Corrupted: corrupted}
	}
	if seeds > 1 {
		return runSeedsSummary(kind, sp, seeds)
	}
	return finishRun(sp, out, func(r *scenario.Report) {
		fmt.Printf("%-10s n=%d t=%d little=%d corrupted=%d (%s)\n", kind, r.N, r.T, r.Byzantine.L, count, strategy)
		printMetrics(r.Metrics)
		fmt.Printf("agreement: %v   byz messages: %d\n", r.Byzantine.Agreement, r.Metrics.ByzMessages)
	})
}

func printMetrics(m scenario.Metrics) {
	fmt.Printf("rounds:    %d\n", m.Rounds)
	fmt.Printf("messages:  %d (non-faulty)\n", m.Messages)
	fmt.Printf("bits:      %d\n", m.Bits)
	if len(m.PerPart) > 0 {
		parts := make([]string, 0, len(m.PerPart))
		for p := range m.PerPart {
			parts = append(parts, p)
		}
		sort.Strings(parts)
		fmt.Println("per part:")
		for _, p := range parts {
			fmt.Printf("  %-16s %d\n", p, m.PerPart[p])
		}
	}
}
