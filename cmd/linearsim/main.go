// Command linearsim runs any algorithm of the library on a simulated
// synchronous network and prints the paper's two performance metrics
// (rounds, communication) together with the correctness verdicts.
//
// Examples:
//
//	linearsim -problem consensus -algo few-crashes -n 200 -t 40 -crashes 40
//	linearsim -problem consensus -algo single-port -n 100 -t 20
//	linearsim -problem gossip -n 150 -t 30
//	linearsim -problem checkpoint -n 150 -t 30 -baseline
//	linearsim -problem byzantine -n 100 -t 10 -byz equivocate -byzcount 10
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"lineartime"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "linearsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("linearsim", flag.ContinueOnError)
	var (
		problem  = fs.String("problem", "consensus", "consensus | gossip | checkpoint | byzantine")
		algo     = fs.String("algo", "few-crashes", "consensus algorithm: few-crashes | many-crashes | flooding | single-port | early-stopping | rotating-coordinator")
		n        = fs.Int("n", 100, "number of nodes")
		t        = fs.Int("t", 20, "fault bound")
		seed     = fs.Uint64("seed", 1, "deterministic seed")
		crashes  = fs.Int("crashes", 0, "random crashes to inject (≤ t)")
		horizon  = fs.Int("horizon", 64, "last round at which random crashes may happen")
		baseline = fs.Bool("baseline", false, "run the comparator instead of the paper's algorithm")
		byz      = fs.String("byz", "silence", "byzantine strategy: silence | equivocate | spam")
		byzCount = fs.Int("byzcount", 0, "number of corrupted nodes (byzantine problem)")
		ones     = fs.Int("ones", -1, "consensus: number of nodes with input 1 (-1 = every third)")
		trace    = fs.Bool("trace", false, "print a transcript summary (few-crashes consensus only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trace {
		return runTraced(*n, *t, *seed, *crashes, *horizon)
	}

	opts := []lineartime.Option{lineartime.WithSeed(*seed)}
	if *crashes > 0 {
		opts = append(opts, lineartime.WithRandomCrashes(*crashes, *horizon))
	}

	switch *problem {
	case "consensus":
		return runConsensus(*algo, *n, *t, *ones, *baseline, opts)
	case "gossip":
		return runGossip(*n, *t, *baseline, opts)
	case "checkpoint":
		return runCheckpoint(*n, *t, *baseline, opts)
	case "byzantine":
		return runByzantine(*n, *t, *byz, *byzCount, *baseline, opts)
	default:
		return fmt.Errorf("unknown problem %q", *problem)
	}
}

func algorithmFromName(name string, baseline bool) (lineartime.Algorithm, error) {
	if baseline {
		return lineartime.FloodingBaseline, nil
	}
	switch name {
	case "few-crashes":
		return lineartime.FewCrashes, nil
	case "many-crashes":
		return lineartime.ManyCrashes, nil
	case "flooding":
		return lineartime.FloodingBaseline, nil
	case "single-port":
		return lineartime.SinglePortLinear, nil
	case "early-stopping":
		return lineartime.EarlyStoppingBaseline, nil
	case "rotating-coordinator":
		return lineartime.CoordinatorBaseline, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", name)
	}
}

func runConsensus(algoName string, n, t, ones int, baseline bool, opts []lineartime.Option) error {
	algo, err := algorithmFromName(algoName, baseline)
	if err != nil {
		return err
	}
	inputs := make([]bool, n)
	for i := range inputs {
		if ones < 0 {
			inputs[i] = i%3 == 0
		} else {
			inputs[i] = i < ones
		}
	}
	r, err := lineartime.RunConsensus(n, t, inputs, append(opts, lineartime.WithAlgorithm(algo))...)
	if err != nil {
		return err
	}
	fmt.Printf("consensus  algo=%-12s n=%d t=%d\n", r.Algorithm, r.N, r.T)
	printMetrics(r.Metrics)
	fmt.Printf("crashed:   %d nodes\n", len(r.Crashed))
	fmt.Printf("agreement: %v   validity: %v\n", r.Agreement, r.Validity)
	return nil
}

func runGossip(n, t int, baseline bool, opts []lineartime.Option) error {
	rumors := make([]uint64, n)
	for i := range rumors {
		rumors[i] = uint64(1000 + i)
	}
	r, err := lineartime.RunGossip(n, t, rumors, baseline, opts...)
	if err != nil {
		return err
	}
	kind := "gossip(§5)"
	if baseline {
		kind = "gossip(all-to-all)"
	}
	fmt.Printf("%-10s n=%d t=%d\n", kind, r.N, r.T)
	printMetrics(r.Metrics)
	fmt.Printf("crashed:   %d nodes\n", len(r.Crashed))
	fmt.Printf("complete:  %v\n", r.Complete)
	return nil
}

func runCheckpoint(n, t int, baseline bool, opts []lineartime.Option) error {
	r, err := lineartime.RunCheckpointing(n, t, baseline, opts...)
	if err != nil {
		return err
	}
	kind := "checkpoint(§6)"
	if baseline {
		kind = "checkpoint(direct)"
	}
	fmt.Printf("%-10s n=%d t=%d\n", kind, r.N, r.T)
	printMetrics(r.Metrics)
	fmt.Printf("crashed:   %d nodes\n", len(r.Crashed))
	fmt.Printf("agreement: %v   extant set size: %d\n", r.Agreement, len(r.ExtantSet))
	return nil
}

func runByzantine(n, t int, strategy string, count int, baseline bool, opts []lineartime.Option) error {
	var strat lineartime.ByzantineStrategy
	switch strategy {
	case "silence":
		strat = lineartime.Silence
	case "equivocate":
		strat = lineartime.Equivocate
	case "spam":
		strat = lineartime.Spam
	default:
		return fmt.Errorf("unknown byzantine strategy %q", strategy)
	}
	if count > t {
		count = t
	}
	corrupted := make([]int, 0, count)
	for i := 0; i < count; i++ {
		corrupted = append(corrupted, i)
	}
	inputs := make([]uint64, n)
	for i := range inputs {
		inputs[i] = uint64(100 + i)
	}
	if count > 0 {
		opts = append(opts, lineartime.WithByzantine(strat, corrupted...))
	}
	r, err := lineartime.RunByzantineConsensus(n, t, inputs, baseline, opts...)
	if err != nil {
		return err
	}
	kind := "ab-consensus(§7)"
	if baseline {
		kind = "dolev-strong-all"
	}
	fmt.Printf("%-10s n=%d t=%d little=%d corrupted=%d (%s)\n", kind, r.N, r.T, r.L, count, strategy)
	printMetrics(r.Metrics)
	fmt.Printf("agreement: %v   byz messages: %d\n", r.Agreement, r.Metrics.ByzMessages)
	return nil
}

func printMetrics(m lineartime.Metrics) {
	fmt.Printf("rounds:    %d\n", m.Rounds)
	fmt.Printf("messages:  %d (non-faulty)\n", m.Messages)
	fmt.Printf("bits:      %d\n", m.Bits)
	if len(m.PerPart) > 0 {
		parts := make([]string, 0, len(m.PerPart))
		for p := range m.PerPart {
			parts = append(parts, p)
		}
		sort.Strings(parts)
		fmt.Println("per part:")
		for _, p := range parts {
			fmt.Printf("  %-16s %d\n", p, m.PerPart[p])
		}
	}
}
