package main

import (
	"fmt"
	"os"

	"lineartime/internal/obs"
	"lineartime/internal/scenario"
	"lineartime/internal/serve"
	"lineartime/internal/trace"
)

// output selects how a single run is rendered: the daemon's JSON
// envelope, the stage-timing + transcript trace, both (the trace rides
// the envelope's "trace" key), or the default text report.
type output struct {
	json  bool
	trace bool
}

// finishRun is the CLI's single run-and-render path. With -trace it
// installs the engine-level hooks on the spec — the transcript
// recorder (message/crash timeline) and the span tracer (per-stage
// wall-clock) — so tracing works for every scenario registry row, not
// just one hand-built stack. printText renders the problem-specific
// text report when JSON output is off.
func finishRun(sp scenario.Spec, out output, printText func(*scenario.Report)) error {
	var rec *trace.Recorder
	var spans *obs.SpanTracer
	if out.trace {
		rec = trace.NewRecorder(sp.N)
		sp.Observer = rec
		spans = obs.NewSpanTracer()
		sp.Tracer = spans
	}
	r, err := scenario.Run(sp)
	if err != nil {
		return err
	}
	if out.json {
		var tr *obs.Trace
		if spans != nil {
			tr = spans.Trace()
		}
		return printJSONTrace(sp, r, tr)
	}
	printText(r)
	if out.trace {
		printTrace(rec, spans, r)
	}
	return nil
}

// printTrace renders the -trace diagnostics below the text report: the
// stage spans from the run tracer, then the transcript recorder's
// traffic analysis.
func printTrace(rec *trace.Recorder, spans *obs.SpanTracer, r *scenario.Report) {
	tr := spans.Trace()
	fmt.Printf("\nstages (engine=%s outcome=%s, %.3f ms total):\n", tr.Engine, tr.Outcome, tr.DurationMS)
	for _, s := range tr.Spans {
		fmt.Printf("  %-8s %10.3f ms\n", s.Name, s.DurationMS)
	}
	fmt.Println()
	fmt.Print(rec.Summary())
	fmt.Printf("\ntraffic profile (%d buckets over %d rounds):\n  ", 10, r.Metrics.Rounds)
	for _, c := range rec.TrafficProfile(10) {
		fmt.Printf("%6d", c)
	}
	fmt.Println()
	if quiet := rec.QuietNodes(); len(quiet) > 0 {
		fmt.Printf("\nquiet nodes (never sent): %v\n", quiet)
	}
}

// printJSONTrace emits the daemon's run envelope with the optional
// trace transcript under the "trace" key; a nil trace produces the
// exact daemon encoding.
func printJSONTrace(sp scenario.Spec, r *scenario.Report, tr *obs.Trace) error {
	body, err := serve.EncodeRunResponseTrace(sp.Key(), r, tr)
	if err != nil {
		return err
	}
	body = append(body, '\n')
	_, err = os.Stdout.Write(body)
	return err
}
