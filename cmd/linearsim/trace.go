package main

import (
	"fmt"

	"lineartime/internal/consensus"
	"lineartime/internal/crash"
	"lineartime/internal/scenario"
	"lineartime/internal/sim"
	"lineartime/internal/trace"
)

// runTraced runs Few-Crashes-Consensus with the transcript recorder
// attached and prints the traffic analysis: per-part attribution plus
// the recorder's per-round/per-node profile. It builds the stack
// directly on the internal packages because the observer hook is an
// engine-level diagnostic, not part of the public API.
func runTraced(n, t int, seed uint64, crashes, horizon int) error {
	top, err := consensus.NewTopology(n, t, consensus.TopologyOptions{Seed: seed})
	if err != nil {
		return err
	}
	rec := trace.NewRecorder(n)
	ms := make([]*consensus.FewCrashes, n)
	ps := make([]sim.Protocol, n)
	for i := 0; i < n; i++ {
		ms[i] = consensus.NewFewCrashes(i, top, i%3 == 0)
		ps[i] = ms[i]
	}
	var adv sim.LinkFault
	if crashes > 0 {
		adv = crash.NewRandom(n, crashes, horizon, seed+101)
	}
	res, err := scenario.Execute(sim.Config{
		Protocols:   ps,
		Fault:       adv,
		Observer:    rec,
		PartLabeler: ms[0].PartAt,
		MaxRounds:   ms[0].ScheduleLength() + 8,
	}, scenario.Serial)
	if err != nil {
		return err
	}
	fmt.Printf("few-crashes consensus, n=%d t=%d (traced)\n\n", n, t)
	fmt.Print(rec.Summary())
	fmt.Printf("\ntraffic profile (%d buckets over %d rounds):\n  ", 10, res.Metrics.Rounds)
	for _, c := range rec.TrafficProfile(10) {
		fmt.Printf("%6d", c)
	}
	fmt.Println()
	if len(res.Metrics.PerPart) > 0 {
		fmt.Println("\nper part:")
		for part, count := range res.Metrics.PerPart {
			fmt.Printf("  %-16s %d\n", part, count)
		}
	}
	if quiet := rec.QuietNodes(); len(quiet) > 0 {
		fmt.Printf("\nquiet nodes (never sent): %v\n", quiet)
	}
	return nil
}
