package main

import (
	"strings"
	"testing"
)

func TestRunAllProblems(t *testing.T) {
	cases := [][]string{
		{"-problem", "consensus", "-n", "60", "-t", "12", "-crashes", "12"},
		{"-problem", "consensus", "-algo", "many-crashes", "-n", "60", "-t", "40"},
		{"-problem", "consensus", "-algo", "flooding", "-n", "40", "-t", "8"},
		{"-problem", "consensus", "-algo", "single-port", "-n", "40", "-t", "8"},
		{"-problem", "consensus", "-baseline", "-n", "40", "-t", "8"},
		{"-problem", "consensus", "-ones", "10", "-n", "40", "-t", "8"},
		{"-problem", "gossip", "-n", "50", "-t", "10"},
		{"-problem", "gossip", "-baseline", "-n", "50", "-t", "10"},
		{"-problem", "checkpoint", "-n", "50", "-t", "10"},
		{"-problem", "checkpoint", "-baseline", "-n", "50", "-t", "10"},
		{"-problem", "byzantine", "-n", "40", "-t", "4", "-byz", "equivocate", "-byzcount", "4"},
		{"-problem", "byzantine", "-n", "40", "-t", "4", "-byz", "spam", "-byzcount", "2"},
		{"-problem", "byzantine", "-n", "30", "-t", "3", "-baseline"},
		{"-problem", "byzantine", "-n", "30", "-t", "3", "-byzcount", "9"}, // clamped to t
		// The -fault flag: any registered fault model from the CLI.
		{"-problem", "consensus", "-n", "60", "-t", "10", "-fault", "omission:rate=0.05"},
		{"-problem", "consensus", "-n", "60", "-t", "10", "-fault", "delay:d=2"},
		{"-problem", "consensus", "-algo", "flooding", "-n", "40", "-t", "8", "-fault", "partition:from=1,to=4"},
		{"-problem", "consensus", "-n", "60", "-t", "10", "-fault", "random-crashes:count=10,horizon=40"},
		{"-problem", "consensus", "-n", "60", "-t", "10", "-fault", "crash-schedule:events=1@0;2@1/0"},
		{"-problem", "gossip", "-n", "50", "-t", "10", "-fault", "delay:d=1"},
		{"-problem", "checkpoint", "-n", "50", "-t", "10", "-fault", "partition:from=1,to=3,cut=25"},
		// -fault overrides -crashes.
		{"-problem", "consensus", "-n", "60", "-t", "10", "-crashes", "5", "-fault", "none"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(args); err != nil {
				t.Fatalf("run(%v): %v", args, err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-problem", "nonsense"},
		{"-problem", "consensus", "-algo", "nonsense"},
		{"-problem", "byzantine", "-byz", "nonsense"},
		{"-problem", "consensus", "-n", "10", "-t", "9"}, // t > n/5 for few-crashes
		{"-badflag"},
		{"-problem", "consensus", "-n", "60", "-t", "10", "-fault", "gremlins"},
		{"-problem", "consensus", "-n", "60", "-t", "10", "-fault", "omission:rate=1.5"},
		{"-problem", "consensus", "-n", "60", "-t", "10", "-fault", "partition:from=4,to=4"},
		{"-problem", "consensus", "-n", "60", "-t", "10", "-fault", "delay:d=0"},
		{"-problem", "byzantine", "-n", "40", "-t", "4", "-fault", "omission:rate=0.1"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(args); err == nil {
				t.Fatalf("run(%v) succeeded, want error", args)
			}
		})
	}
}

func TestScenarioForAlgorithm(t *testing.T) {
	for _, name := range []string{"few-crashes", "many-crashes", "flooding", "single-port"} {
		if _, err := scenarioForAlgorithm(name, false); err != nil {
			t.Errorf("scenarioForAlgorithm(%q): %v", name, err)
		}
	}
	if d, err := scenarioForAlgorithm("anything", true); err != nil || string(d.Algorithm) != "flooding" {
		t.Errorf("baseline override broken: %v %v", d.Algorithm, err)
	}
}

func TestListScenarios(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraced(t *testing.T) {
	if err := run([]string{"-trace", "-n", "50", "-t", "10", "-crashes", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace", "-n", "10", "-t", "9"}); err == nil {
		t.Fatal("invalid topology accepted in trace mode")
	}
}
