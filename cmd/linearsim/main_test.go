package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"lineartime/internal/serve"
)

func TestRunAllProblems(t *testing.T) {
	cases := [][]string{
		{"-problem", "consensus", "-n", "60", "-t", "12", "-crashes", "12"},
		{"-problem", "consensus", "-algo", "many-crashes", "-n", "60", "-t", "40"},
		{"-problem", "consensus", "-algo", "flooding", "-n", "40", "-t", "8"},
		{"-problem", "consensus", "-algo", "single-port", "-n", "40", "-t", "8"},
		{"-problem", "consensus", "-baseline", "-n", "40", "-t", "8"},
		{"-problem", "consensus", "-ones", "10", "-n", "40", "-t", "8"},
		{"-problem", "gossip", "-n", "50", "-t", "10"},
		{"-problem", "gossip", "-baseline", "-n", "50", "-t", "10"},
		{"-problem", "checkpoint", "-n", "50", "-t", "10"},
		{"-problem", "checkpoint", "-baseline", "-n", "50", "-t", "10"},
		{"-problem", "byzantine", "-n", "40", "-t", "4", "-byz", "equivocate", "-byzcount", "4"},
		{"-problem", "byzantine", "-n", "40", "-t", "4", "-byz", "spam", "-byzcount", "2"},
		{"-problem", "byzantine", "-n", "30", "-t", "3", "-baseline"},
		{"-problem", "byzantine", "-n", "30", "-t", "3", "-byzcount", "9"}, // clamped to t
		// The -fault flag: any registered fault model from the CLI.
		{"-problem", "consensus", "-n", "60", "-t", "10", "-fault", "omission:rate=0.05"},
		{"-problem", "consensus", "-n", "60", "-t", "10", "-fault", "delay:d=2"},
		{"-problem", "consensus", "-algo", "flooding", "-n", "40", "-t", "8", "-fault", "partition:from=1,to=4"},
		{"-problem", "consensus", "-n", "60", "-t", "10", "-fault", "random-crashes:count=10,horizon=40"},
		{"-problem", "consensus", "-n", "60", "-t", "10", "-fault", "crash-schedule:events=1@0;2@1/0"},
		{"-problem", "gossip", "-n", "50", "-t", "10", "-fault", "delay:d=1"},
		{"-problem", "checkpoint", "-n", "50", "-t", "10", "-fault", "partition:from=1,to=3,cut=25"},
		// -fault overrides -crashes.
		{"-problem", "consensus", "-n", "60", "-t", "10", "-crashes", "5", "-fault", "none"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(args); err != nil {
				t.Fatalf("run(%v): %v", args, err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-problem", "nonsense"},
		{"-problem", "consensus", "-algo", "nonsense"},
		{"-problem", "byzantine", "-byz", "nonsense"},
		{"-problem", "consensus", "-n", "10", "-t", "9"}, // t > n/5 for few-crashes
		{"-badflag"},
		{"-problem", "consensus", "-n", "60", "-t", "10", "-fault", "gremlins"},
		{"-problem", "consensus", "-n", "60", "-t", "10", "-fault", "omission:rate=1.5"},
		{"-problem", "consensus", "-n", "60", "-t", "10", "-fault", "partition:from=4,to=4"},
		{"-problem", "consensus", "-n", "60", "-t", "10", "-fault", "delay:d=0"},
		{"-problem", "byzantine", "-n", "40", "-t", "4", "-fault", "omission:rate=0.1"},
		{"-problem", "consensus", "-n", "40", "-t", "8", "-seeds", "0"},
		{"-problem", "consensus", "-n", "40", "-t", "8", "-seeds", "4", "-json"},
		{"-problem", "consensus", "-n", "40", "-t", "8", "-seeds", "4", "-trace"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(args); err == nil {
				t.Fatalf("run(%v) succeeded, want error", args)
			}
		})
	}
}

// TestRunSeedsSummary exercises the -seeds sweep for every problem:
// the sliceable flooding comparator (which rides the bit-sliced
// engine), the expander scenarios (scalar fallback: their topologies
// are seed-derived), and byzantine (adaptive, always scalar).
func TestRunSeedsSummary(t *testing.T) {
	cases := [][]string{
		{"-problem", "consensus", "-algo", "flooding", "-n", "40", "-t", "8", "-seeds", "64", "-fault", "random-crashes:count=8,horizon=10"},
		{"-problem", "consensus", "-n", "60", "-t", "12", "-crashes", "12", "-seeds", "3"},
		{"-problem", "gossip", "-n", "50", "-t", "10", "-seeds", "3", "-fault", "delay:d=1"},
		{"-problem", "checkpoint", "-n", "50", "-t", "10", "-seeds", "3"},
		{"-problem", "byzantine", "-n", "40", "-t", "4", "-byz", "equivocate", "-byzcount", "4", "-seeds", "3"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(args); err != nil {
				t.Fatalf("run(%v): %v", args, err)
			}
		})
	}
}

func TestScenarioForAlgorithm(t *testing.T) {
	for _, name := range []string{"few-crashes", "many-crashes", "flooding", "single-port"} {
		if _, err := scenarioForAlgorithm(name, false); err != nil {
			t.Errorf("scenarioForAlgorithm(%q): %v", name, err)
		}
	}
	if d, err := scenarioForAlgorithm("anything", true); err != nil || string(d.Algorithm) != "flooding" {
		t.Errorf("baseline override broken: %v %v", d.Algorithm, err)
	}
}

func TestListScenarios(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns what it wrote.
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		var buf bytes.Buffer
		buf.ReadFrom(r)
		done <- buf.Bytes()
	}()
	fnErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if fnErr != nil {
		t.Fatalf("run: %v", fnErr)
	}
	return out
}

// TestJSONOutput checks -json emits the daemon's run envelope for
// every problem: one decodable {key, report} line, with the key a
// spec fingerprint and the report section matching the problem.
func TestJSONOutput(t *testing.T) {
	cases := []struct {
		args    []string
		problem string
	}{
		{[]string{"-problem", "consensus", "-n", "60", "-t", "10", "-json"}, "consensus"},
		{[]string{"-problem", "gossip", "-n", "50", "-t", "10", "-json"}, "gossip"},
		{[]string{"-problem", "checkpoint", "-n", "50", "-t", "10", "-json"}, "checkpoint"},
		{[]string{"-problem", "byzantine", "-n", "40", "-t", "4", "-byzcount", "4", "-json"}, "byzantine"},
	}
	for _, tc := range cases {
		t.Run(tc.problem, func(t *testing.T) {
			out := captureStdout(t, func() error { return run(tc.args) })
			var env serve.RunResponse
			if err := json.Unmarshal(out, &env); err != nil {
				t.Fatalf("output is not one JSON envelope: %v\n%s", err, out)
			}
			if !strings.HasPrefix(env.Key, "k1:") {
				t.Fatalf("key = %q", env.Key)
			}
			if env.Report == nil || env.Report.Problem.String() != tc.problem {
				t.Fatalf("report problem = %+v, want %s", env.Report, tc.problem)
			}
		})
	}
}

// postToHandler posts body to the serving layer's /v1/run in process
// and returns the response body.
func postToHandler(t *testing.T, s *serve.Server, body string) string {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/run", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("daemon run: status %d body %s", rec.Code, rec.Body)
	}
	return rec.Body.String()
}

// TestJSONOutputMatchesDaemonEncoding pins that linearsim -json and
// the serving layer produce the same bytes for the same spec — one
// format for scripted consumers.
func TestJSONOutputMatchesDaemonEncoding(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-problem", "consensus", "-n", "60", "-t", "10", "-seed", "1", "-json"})
	})
	s := serve.New(serve.Config{Workers: 1})
	defer s.Close()
	rec := postToHandler(t, s, `{"scenario":"consensus/few-crashes","n":60,"t":10,"seed":1}`)
	if want := strings.TrimSuffix(string(out), "\n"); rec != want {
		t.Fatalf("encodings diverged:\n cli    %s\n daemon %s", want, rec)
	}
}

// TestJSONTrace pins the lifted -trace/-json exclusion: together they
// emit the daemon envelope with the stage transcript under the "trace"
// key — and plain -json still omits the key entirely, keeping its
// bytes daemon-identical.
func TestJSONTrace(t *testing.T) {
	out := captureStdout(t, func() error {
		return run([]string{"-problem", "gossip", "-n", "50", "-t", "10", "-trace", "-json"})
	})
	var env struct {
		Key   string `json:"key"`
		Trace *struct {
			Engine  string `json:"engine"`
			Outcome string `json:"outcome"`
			Rounds  int    `json:"rounds"`
			Spans   []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(out, &env); err != nil {
		t.Fatalf("traced envelope is not JSON: %v\n%s", err, out)
	}
	if env.Trace == nil {
		t.Fatalf("traced envelope has no trace key: %s", out)
	}
	if env.Trace.Engine != "sequential" || env.Trace.Outcome != "ok" || env.Trace.Rounds <= 0 {
		t.Fatalf("trace = %+v", env.Trace)
	}
	names := make(map[string]bool)
	for _, s := range env.Trace.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"setup", "rounds", "decode"} {
		if !names[want] {
			t.Fatalf("trace spans missing %q: %+v", want, env.Trace.Spans)
		}
	}

	plain := captureStdout(t, func() error {
		return run([]string{"-problem", "gossip", "-n", "50", "-t", "10", "-json"})
	})
	if bytes.Contains(plain, []byte(`"trace"`)) {
		t.Fatalf("plain -json grew a trace key: %s", plain)
	}
}

// TestRunTraced checks -trace works for every registry problem, not
// just the hand-built few-crashes stack it used to be limited to.
func TestRunTraced(t *testing.T) {
	cases := [][]string{
		{"-trace", "-n", "50", "-t", "10", "-crashes", "10"},
		{"-problem", "gossip", "-trace", "-n", "50", "-t", "10"},
		{"-problem", "checkpoint", "-trace", "-n", "50", "-t", "10"},
		{"-problem", "byzantine", "-trace", "-n", "40", "-t", "4", "-byzcount", "4"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			out := captureStdout(t, func() error { return run(args) })
			for _, want := range []string{"stages (engine=sequential", "rounds", "setup"} {
				if !strings.Contains(string(out), want) {
					t.Fatalf("trace output missing %q:\n%s", want, out)
				}
			}
		})
	}
	if err := run([]string{"-trace", "-n", "10", "-t", "9"}); err == nil {
		t.Fatal("invalid topology accepted in trace mode")
	}
}
