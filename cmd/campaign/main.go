// Command campaign drives chaos campaigns (internal/campaign): a
// budgeted, deterministic search over the fault space of a registry
// scenario for the adversary schedules that hurt the most. It runs in
// two modes —
//
//	local (default): evaluate candidates in-process. With -state, the
//	campaign checkpoints after every batch and a re-invocation with
//	the same flags resumes from the checkpoint; either way the final
//	frontier artifact is byte-identical to an uninterrupted run.
//
//	remote (-addr): POST the campaign to a linearsimd daemon as an
//	async job, poll its progress, and write the frontier artifact on
//	completion. -nowait just prints the job id; -watch polls an
//	existing job by id.
//
// -validate checks a frontier artifact file against the schema and
// exits; CI uses it to gate committed artifacts.
//
// Examples:
//
//	campaign -scenario consensus/few-crashes -n 96 -t 16 -sims 48 -o frontier.json
//	campaign -addr http://127.0.0.1:8372 -scenario gossip/expander -n 96 -t 16 -sims 48
//	campaign -validate testdata/frontier_consensus_few-crashes.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"lineartime/internal/campaign"
	"lineartime/internal/scenario"
	"lineartime/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	var (
		scen     = fs.String("scenario", "consensus/few-crashes", "registry scenario to attack")
		n        = fs.Int("n", 96, "scenario size")
		t        = fs.Int("t", 16, "scenario fault bound")
		seed     = fs.Uint64("seed", 1, "run seed shared by every evaluation")
		sims     = fs.Int("sims", 48, "total evaluation budget")
		waves    = fs.Int("waves", 0, "refinement wave cap (0 = default 4)")
		topk     = fs.Int("topk", 0, "frontier size and refinement fan (0 = default 4)")
		kinds    = fs.String("kinds", "", "comma-separated fault axes to search (default: all of omission,partition,delay,crash)")
		wallMS   = fs.Int("wall-ms", 0, "wall-clock budget in ms (0 = none); a cut campaign is marked truncated")
		conc     = fs.Int("conc", 0, "local evaluation concurrency (0 = GOMAXPROCS)")
		out      = fs.String("o", "", "frontier artifact output file ('' = stdout)")
		state    = fs.String("state", "", "local checkpoint file: written per batch, resumed when present")
		addr     = fs.String("addr", "", "daemon base URL: run the campaign remotely as an async job")
		nowait   = fs.Bool("nowait", false, "with -addr: submit, print the job id, exit")
		watch    = fs.String("watch", "", "with -addr: poll this existing job id instead of submitting")
		validate = fs.String("validate", "", "validate a frontier artifact file and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *validate != "" {
		blob, err := os.ReadFile(*validate)
		if err != nil {
			return err
		}
		if err := campaign.ValidateFrontier(blob); err != nil {
			return fmt.Errorf("%s: %w", *validate, err)
		}
		fmt.Fprintf(stdout, "%s: valid %s artifact\n", *validate, campaign.FrontierSchema)
		return nil
	}

	spec := campaign.Spec{
		Scenario: *scen,
		N:        *n,
		T:        *t,
		Seed:     *seed,
		Budget: campaign.Budget{
			MaxSims:        *sims,
			MaxWaves:       *waves,
			TopK:           *topk,
			MaxWallClockMS: *wallMS,
		},
	}
	if *kinds != "" {
		spec.Kinds = strings.Split(*kinds, ",")
	}

	if *addr != "" {
		return runRemote(stdout, *addr, spec, *out, *nowait, *watch)
	}
	if *watch != "" || *nowait {
		return errors.New("-watch and -nowait need -addr")
	}
	return runLocal(stdout, spec, *out, *state, *conc)
}

// runLocal drives the campaign in-process. SIGINT/SIGTERM interrupt
// it at the next batch boundary; with -state the checkpoint survives
// to the next invocation.
func runLocal(stdout io.Writer, spec campaign.Spec, out, state string, conc int) error {
	if conc <= 0 {
		conc = runtime.GOMAXPROCS(0)
	}
	localRun := func(_ context.Context, sp scenario.Spec) (*scenario.Report, error) {
		return scenario.Run(sp)
	}

	var ctrl *campaign.Controller
	if state != "" {
		if blob, err := os.ReadFile(state); err == nil {
			var cp campaign.Checkpoint
			if err := json.Unmarshal(blob, &cp); err != nil {
				return fmt.Errorf("checkpoint %s: %w", state, err)
			}
			norm, err := spec.Normalize()
			if err != nil {
				return err
			}
			if cp.Campaign.ID() != norm.ID() {
				return fmt.Errorf("checkpoint %s belongs to campaign %s, not %s (different flags?)", state, cp.Campaign.ID(), norm.ID())
			}
			ctrl, err = campaign.Resume(&cp, localRun, conc)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "resuming %s from %s: %d/%d sims done\n", norm.ID(), state, cp.Sims, norm.Budget.MaxSims)
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	if ctrl == nil {
		var err error
		ctrl, err = campaign.New(spec, localRun, conc)
		if err != nil {
			return err
		}
	}
	// Whole batches go through the scenario batch path: sliceable
	// candidate sets (e.g. flooding under the searched fault axes) ride
	// the bit-sliced engine up to 64 candidates per machine word, the
	// rest take its scalar fallback pool.
	ctrl.SetBatchRun(func(_ context.Context, sps []scenario.Spec) ([]*scenario.Report, []error) {
		return scenario.ExecuteBatch(sps)
	})
	if state != "" {
		ctrl.SetBatchHook(func(cp *campaign.Checkpoint) {
			if err := writeCheckpoint(state, cp); err != nil {
				fmt.Fprintf(os.Stderr, "campaign: checkpoint: %v\n", err)
			}
		})
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	fr, err := ctrl.Run(ctx)
	if errors.Is(err, campaign.ErrInterrupted) {
		if state != "" {
			if err := writeCheckpoint(state, ctrl.Checkpoint()); err != nil {
				return err
			}
			p := ctrl.Snapshot()
			fmt.Fprintf(stdout, "interrupted at %d/%d sims; checkpoint saved to %s — rerun to resume\n", p.Sims, p.MaxSims, state)
			return nil
		}
		return errors.New("interrupted (no -state file, progress lost)")
	}
	if err != nil {
		return err
	}
	if state != "" {
		// The campaign is complete; a stale checkpoint would make the
		// next invocation replay it instead of searching fresh flags.
		os.Remove(state)
	}
	return writeArtifact(stdout, out, fr)
}

// writeCheckpoint atomically persists a checkpoint.
func writeCheckpoint(path string, cp *campaign.Checkpoint) error {
	blob, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func writeArtifact(stdout io.Writer, out string, fr *campaign.Frontier) error {
	data, err := fr.Encode()
	if err != nil {
		return err
	}
	if out == "" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	return nil
}

// runRemote submits the campaign to a daemon (or attaches to an
// existing job with -watch) and polls it to completion.
func runRemote(stdout io.Writer, addr string, spec campaign.Spec, out string, nowait bool, watch string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	id := watch
	if id == "" {
		blob, err := json.Marshal(spec)
		if err != nil {
			return err
		}
		resp, err := client.Post(addr+"/v1/campaigns", "application/json", strings.NewReader(string(blob)))
		if err != nil {
			return err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return rerr
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST /v1/campaigns: status %d: %s", resp.StatusCode, body)
		}
		var st serve.CampaignStatus
		if err := json.Unmarshal(body, &st); err != nil {
			return err
		}
		id = st.ID
		if nowait {
			fmt.Fprintln(stdout, id)
			return nil
		}
		fmt.Fprintf(stdout, "campaign %s accepted (%s)\n", id, st.Status)
	}

	for {
		resp, err := client.Get(addr + "/v1/campaigns/" + id)
		if err != nil {
			return err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return rerr
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET /v1/campaigns/%s: status %d: %s", id, resp.StatusCode, body)
		}
		var st serve.CampaignStatus
		if err := json.Unmarshal(body, &st); err != nil {
			return err
		}
		switch st.Status {
		case serve.JobRunning:
			time.Sleep(200 * time.Millisecond)
		case serve.JobDone:
			var fr campaign.Frontier
			if err := json.Unmarshal(st.Frontier, &fr); err != nil {
				return err
			}
			return writeArtifact(stdout, out, &fr)
		case serve.JobInterrupted:
			return fmt.Errorf("campaign %s was interrupted by a daemon shutdown; it resumes on the next daemon start", id)
		default:
			return fmt.Errorf("campaign %s ended %s: %s", id, st.Status, st.Error)
		}
	}
}
