package main

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lineartime/internal/campaign"
	"lineartime/internal/scenario"
	"lineartime/internal/serve"
)

var quickArgs = []string{
	"-scenario", "consensus/few-crashes", "-n", "12", "-t", "2", "-seed", "1",
	"-sims", "12", "-waves", "2", "-topk", "3", "-kinds", "omission,delay",
}

func quickSpec() campaign.Spec {
	return campaign.Spec{
		Scenario: "consensus/few-crashes",
		N:        12,
		T:        2,
		Seed:     1,
		Kinds:    []string{campaign.KindOmission, campaign.KindDelay},
		Budget:   campaign.Budget{MaxSims: 12, MaxWaves: 2, TopK: 3},
	}
}

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(args, &out)
	return out.String(), err
}

// TestLocalDeterministic pins the CLI's local mode: two runs of the
// same flags produce byte-identical, schema-valid artifacts.
func TestLocalDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	if _, err := runCLI(t, append(quickArgs, "-o", a)...); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if _, err := runCLI(t, append(quickArgs, "-o", b)...); err != nil {
		t.Fatalf("second run: %v", err)
	}
	ba, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatalf("artifacts differ:\n%s\nvs\n%s", ba, bb)
	}
	if err := campaign.ValidateFrontier(ba); err != nil {
		t.Fatalf("artifact invalid: %v", err)
	}

	out, err := runCLI(t, "-validate", a)
	if err != nil {
		t.Fatalf("-validate: %v", err)
	}
	if !strings.Contains(out, "valid") {
		t.Fatalf("-validate output %q", out)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "-validate", bad); err == nil {
		t.Fatal("-validate accepted a wrong-schema artifact")
	}
}

// TestStateResume interrupts a campaign (through the controller API),
// persists its checkpoint the way the CLI does, and requires the CLI
// to resume it to the artifact an uninterrupted run produces.
func TestStateResume(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.json")
	if _, err := runCLI(t, append(quickArgs, "-o", full)...); err != nil {
		t.Fatalf("full run: %v", err)
	}
	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	localRun := func(_ context.Context, sp scenario.Spec) (*scenario.Report, error) {
		return scenario.Run(sp)
	}
	ctrl, err := campaign.New(quickSpec(), localRun, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctrl.SetBatchHook(func(*campaign.Checkpoint) { cancel() })
	if _, err := ctrl.Run(ctx); !errors.Is(err, campaign.ErrInterrupted) {
		t.Fatalf("Run: %v, want ErrInterrupted", err)
	}
	state := filepath.Join(dir, "state.json")
	if err := writeCheckpoint(state, ctrl.Checkpoint()); err != nil {
		t.Fatal(err)
	}

	resumed := filepath.Join(dir, "resumed.json")
	out, err := runCLI(t, append(quickArgs, "-state", state, "-o", resumed)...)
	if err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if !strings.Contains(out, "resuming") {
		t.Fatalf("resume output %q lacks the resume notice", out)
	}
	got, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed artifact diverged:\n%s\nvs\n%s", got, want)
	}
	if _, err := os.Stat(state); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("completed campaign left its checkpoint behind (err=%v)", err)
	}

	// A checkpoint for different flags must be refused, not silently
	// replayed.
	if err := writeCheckpoint(state, ctrl.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	otherArgs := append([]string{}, quickArgs...)
	otherArgs[7] = "2" // different seed
	if _, err := runCLI(t, append(otherArgs, "-state", state)...); err == nil {
		t.Fatal("checkpoint of a different campaign accepted")
	}
}

// TestRemote drives the daemon path: submit, poll, artifact identical
// to the local run; -nowait prints the id and -watch attaches to it.
func TestRemote(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	dir := t.TempDir()
	local := filepath.Join(dir, "local.json")
	if _, err := runCLI(t, append(quickArgs, "-o", local)...); err != nil {
		t.Fatalf("local run: %v", err)
	}
	want, err := os.ReadFile(local)
	if err != nil {
		t.Fatal(err)
	}

	remote := filepath.Join(dir, "remote.json")
	if _, err := runCLI(t, append(quickArgs, "-addr", ts.URL, "-o", remote)...); err != nil {
		t.Fatalf("remote run: %v", err)
	}
	got, err := os.ReadFile(remote)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("remote artifact diverged from local:\n%s\nvs\n%s", got, want)
	}

	// -nowait prints the job id (the campaign is already done on the
	// daemon, so re-POST dedups); -watch retrieves it.
	out, err := runCLI(t, append(quickArgs, "-addr", ts.URL, "-nowait")...)
	if err != nil {
		t.Fatalf("-nowait: %v", err)
	}
	id := strings.TrimSpace(out)
	if id != quickSpec().ID() {
		t.Fatalf("-nowait printed %q, want %s", id, quickSpec().ID())
	}
	watched := filepath.Join(dir, "watched.json")
	if _, err := runCLI(t, "-addr", ts.URL, "-watch", id, "-o", watched); err != nil {
		t.Fatalf("-watch: %v", err)
	}
	got, err = os.ReadFile(watched)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("watched artifact diverged:\n%s\nvs\n%s", got, want)
	}
}

func TestFlagErrors(t *testing.T) {
	if _, err := runCLI(t, "-badflag"); err == nil {
		t.Fatal("bad flag accepted")
	}
	if _, err := runCLI(t, "-nowait"); err == nil {
		t.Fatal("-nowait without -addr accepted")
	}
	if _, err := runCLI(t, "-scenario", "no/such/scenario"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := runCLI(t, "-validate", filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing -validate file accepted")
	}
}
