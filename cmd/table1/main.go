// Command table1 regenerates the paper's Table 1 empirically: for each
// (fault type, problem) row it runs the corresponding algorithm at the
// claimed optimality boundary t and reports whether both performance
// metrics stay linear — time O(t + log n) and communication O(n) —
// by measuring them at two sizes and comparing the growth rate to the
// linear prediction.
//
// Usage: table1 [-n 512] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"lineartime"
)

type row struct {
	faultType string
	problem   string
	rangeOfT  string
	run       func(n int, seed uint64) (rounds int, comm int64, t int, err error)
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	n := fs.Int("n", 1024, "larger network size (the smaller is n/2); sizes below ~512 sit in the constant-dominated regime and overstate growth")
	seed := fs.Uint64("seed", 1, "deterministic seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rows := []row{
		{
			faultType: "crash",
			problem:   "consensus (Few-Crashes, §4)",
			rangeOfT:  "t = O(n/log n)",
			run: func(n int, seed uint64) (int, int64, int, error) {
				t := boundary(n, 1) // n / lg n
				if 5*t > n {
					t = n / 5
				}
				r, err := lineartime.RunConsensus(n, t, thirdInputs(n),
					lineartime.WithSeed(seed), lineartime.WithRandomCrashes(t, 5*t))
				if err != nil {
					return 0, 0, 0, err
				}
				if !r.Agreement || !r.Validity {
					return 0, 0, 0, fmt.Errorf("correctness violated at n=%d", n)
				}
				return r.Metrics.Rounds, r.Metrics.Bits, t, nil
			},
		},
		{
			faultType: "crash",
			problem:   "consensus single-port (§8)",
			rangeOfT:  "t = O(n/log n)",
			run: func(n int, seed uint64) (int, int64, int, error) {
				t := boundary(n, 1)
				if 5*t > n {
					t = n / 5
				}
				r, err := lineartime.RunConsensus(n, t, thirdInputs(n),
					lineartime.WithSeed(seed),
					lineartime.WithAlgorithm(lineartime.SinglePortLinear))
				if err != nil {
					return 0, 0, 0, err
				}
				if !r.Agreement || !r.Validity {
					return 0, 0, 0, fmt.Errorf("correctness violated at n=%d", n)
				}
				return r.Metrics.Rounds, r.Metrics.Bits, t, nil
			},
		},
		{
			faultType: "crash",
			problem:   "gossip (§5)",
			rangeOfT:  "t = O(n/log² n)",
			run: func(n int, seed uint64) (int, int64, int, error) {
				t := boundary(n, 2) // n / lg² n
				if t < 1 {
					t = 1
				}
				rumors := make([]uint64, n)
				for i := range rumors {
					rumors[i] = uint64(i)
				}
				r, err := lineartime.RunGossip(n, t, rumors, false,
					lineartime.WithSeed(seed), lineartime.WithRandomCrashes(t, 40))
				if err != nil {
					return 0, 0, 0, err
				}
				if !r.Complete {
					return 0, 0, 0, fmt.Errorf("gossip incomplete at n=%d", n)
				}
				return r.Metrics.Rounds, r.Metrics.Messages, t, nil
			},
		},
		{
			faultType: "crash",
			problem:   "gossip single-port (§8)",
			rangeOfT:  "t = O(n/log² n)",
			run: func(n int, seed uint64) (int, int64, int, error) {
				t := boundary(n, 2)
				if t < 1 {
					t = 1
				}
				rumors := make([]uint64, n)
				for i := range rumors {
					rumors[i] = uint64(i)
				}
				r, err := lineartime.RunGossip(n, t, rumors, false,
					lineartime.WithSeed(seed), lineartime.WithSinglePortModel())
				if err != nil {
					return 0, 0, 0, err
				}
				if !r.Complete {
					return 0, 0, 0, fmt.Errorf("single-port gossip incomplete at n=%d", n)
				}
				return r.Metrics.Rounds, r.Metrics.Messages, t, nil
			},
		},
		{
			faultType: "crash",
			problem:   "checkpointing (§6)",
			rangeOfT:  "t = O(n/log² n)",
			run: func(n int, seed uint64) (int, int64, int, error) {
				t := boundary(n, 2)
				if t < 1 {
					t = 1
				}
				r, err := lineartime.RunCheckpointing(n, t, false,
					lineartime.WithSeed(seed), lineartime.WithRandomCrashes(t, 40))
				if err != nil {
					return 0, 0, 0, err
				}
				if !r.Agreement {
					return 0, 0, 0, fmt.Errorf("checkpointing disagreement at n=%d", n)
				}
				return r.Metrics.Rounds, r.Metrics.Messages, t, nil
			},
		},
		{
			faultType: "crash",
			problem:   "checkpointing single-port (§8)",
			rangeOfT:  "t = O(n/log² n)",
			run: func(n int, seed uint64) (int, int64, int, error) {
				t := boundary(n, 2)
				if t < 1 {
					t = 1
				}
				r, err := lineartime.RunCheckpointing(n, t, false,
					lineartime.WithSeed(seed), lineartime.WithSinglePortModel())
				if err != nil {
					return 0, 0, 0, err
				}
				if !r.Agreement {
					return 0, 0, 0, fmt.Errorf("single-port checkpointing disagreement at n=%d", n)
				}
				return r.Metrics.Rounds, r.Metrics.Messages, t, nil
			},
		},
		{
			faultType: "auth. Byzantine",
			problem:   "consensus (AB-Consensus, §7)",
			rangeOfT:  "t = O(√n)",
			run: func(n int, seed uint64) (int, int64, int, error) {
				t := int(math.Sqrt(float64(n)) / 2)
				if t < 1 {
					t = 1
				}
				inputs := make([]uint64, n)
				for i := range inputs {
					inputs[i] = uint64(i)
				}
				corrupted := make([]int, 0, t)
				for i := 0; i < t; i++ {
					corrupted = append(corrupted, i)
				}
				r, err := lineartime.RunByzantineConsensus(n, t, inputs, false,
					lineartime.WithSeed(seed),
					lineartime.WithByzantine(lineartime.Equivocate, corrupted...))
				if err != nil {
					return 0, 0, 0, err
				}
				if !r.Agreement {
					return 0, 0, 0, fmt.Errorf("byzantine disagreement at n=%d", n)
				}
				return r.Metrics.Rounds, r.Metrics.Messages, t, nil
			},
		},
	}

	fmt.Println("Table 1 (empirical): linear time and communication at the claimed ranges of t")
	fmt.Println()
	fmt.Printf("%-16s %-30s %-16s %8s %8s %10s %12s %9s %9s\n",
		"fault type", "problem", "range of t", "n", "t", "rounds", "comm", "r-growth", "c-growth")
	for _, rw := range rows {
		small, large := *n/2, *n
		r1, c1, _, err := rw.run(small, *seed)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", rw.faultType, rw.problem, err)
		}
		r2, c2, t2, err := rw.run(large, *seed)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", rw.faultType, rw.problem, err)
		}
		// Growth exponents: log2 of the ratio when n doubles. Linear
		// behavior gives ≈ 1.0 (or below, for polylog components).
		rGrowth := math.Log2(float64(r2) / float64(r1))
		cGrowth := math.Log2(float64(c2) / float64(c1))
		fmt.Printf("%-16s %-30s %-16s %8d %8d %10d %12d %9.2f %9.2f\n",
			rw.faultType, rw.problem, rw.rangeOfT, large, t2, r2, c2, rGrowth, cGrowth)
	}
	fmt.Println()
	fmt.Println("r-growth / c-growth: log2 of metric ratio when n doubles at the boundary t;")
	fmt.Println("values ≤ ~1.2 indicate linear scaling (the Table 1 claim).")
	return nil
}

// boundary returns n / lg^k(n).
func boundary(n, k int) int {
	lg := math.Log2(float64(n))
	return int(float64(n) / math.Pow(lg, float64(k)))
}

func thirdInputs(n int) []bool {
	in := make([]bool, n)
	for i := range in {
		in[i] = i%3 == 0
	}
	return in
}
