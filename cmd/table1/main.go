// Command table1 regenerates the paper's Table 1 empirically: for each
// (fault type, problem) row it runs the corresponding registry
// scenario at the claimed optimality boundary t and reports whether
// both performance metrics stay linear — time O(t + log n) and
// communication O(n) — by measuring them at two sizes and comparing
// the growth rate to the linear prediction. The rows are declared in
// internal/scenario/experiments (Table1Rows); this command is the
// enumeration loop.
//
// Usage: table1 [-n 512] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"lineartime/internal/scenario/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	n := fs.Int("n", 1024, "larger network size (the smaller is n/2); sizes below ~512 sit in the constant-dominated regime and overstate growth")
	seed := fs.Uint64("seed", 1, "deterministic seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Println("Table 1 (empirical): linear time and communication at the claimed ranges of t")
	fmt.Println()
	fmt.Printf("%-16s %-30s %-16s %8s %8s %10s %12s %9s %9s\n",
		"fault type", "problem", "range of t", "n", "t", "rounds", "comm", "r-growth", "c-growth")
	for _, rw := range experiments.Table1Rows() {
		small, large := *n/2, *n
		r1, c1, _, err := rw.Run(small, *seed)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", rw.FaultType, rw.Problem, err)
		}
		r2, c2, t2, err := rw.Run(large, *seed)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", rw.FaultType, rw.Problem, err)
		}
		// Growth exponents: log2 of the ratio when n doubles. Linear
		// behavior gives ≈ 1.0 (or below, for polylog components).
		rGrowth := math.Log2(float64(r2) / float64(r1))
		cGrowth := math.Log2(float64(c2) / float64(c1))
		fmt.Printf("%-16s %-30s %-16s %8d %8d %10d %12d %9.2f %9.2f\n",
			rw.FaultType, rw.Problem, rw.RangeOfT, large, t2, r2, c2, rGrowth, cGrowth)
	}
	fmt.Println()
	fmt.Println("r-growth / c-growth: log2 of metric ratio when n doubles at the boundary t;")
	fmt.Println("values ≤ ~1.2 indicate linear scaling (the Table 1 claim).")
	return nil
}
