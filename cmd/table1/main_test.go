package main

import "testing"

func TestTable1Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 regeneration skipped in -short mode")
	}
	if err := run([]string{"-n", "128", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestTable1BadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestBoundary(t *testing.T) {
	if got := boundary(1024, 1); got != 102 {
		t.Fatalf("boundary(1024,1) = %d, want 102", got)
	}
	if got := boundary(1024, 2); got != 10 {
		t.Fatalf("boundary(1024,2) = %d, want 10", got)
	}
}
