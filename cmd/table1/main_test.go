package main

import (
	"testing"

	"lineartime/internal/scenario/experiments"
)

func TestTable1Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("table1 regeneration skipped in -short mode")
	}
	if err := run([]string{"-n", "128", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestTable1BadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestTable1RowsCoverThePaperTable(t *testing.T) {
	rows := experiments.Table1Rows()
	if len(rows) != 7 {
		t.Fatalf("Table1Rows() has %d rows, want 7", len(rows))
	}
	crash, byz := 0, 0
	for _, rw := range rows {
		switch rw.FaultType {
		case "crash":
			crash++
		case "auth. Byzantine":
			byz++
		default:
			t.Errorf("unexpected fault type %q", rw.FaultType)
		}
	}
	if crash != 6 || byz != 1 {
		t.Fatalf("fault-type split = %d crash / %d byzantine, want 6/1", crash, byz)
	}
}
