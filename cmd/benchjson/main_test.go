package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestBenchJSONQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark emission skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-quick", "-o", out}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Schema != "lineartime/bench_sim/v5" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Benchmarks) != 10 {
		t.Fatalf("benchmarks = %d, want 10 (3 broadcaster + 2 multi-seed + 2 gossip + 3 implicit)", len(rep.Benchmarks))
	}
	var sawParallel, sawReuse, sawScalarPerSeed, sawSliced bool
	var sawGossipScalar, sawGossipSliced bool
	var sawImplicitSeq, sawImplicitPar, sawImplicitSliced bool
	for _, bp := range rep.Benchmarks {
		if bp.NsPerRound <= 0 || bp.MsgsPerRound <= 0 {
			t.Fatalf("degenerate point %+v", bp)
		}
		switch bp.Engine {
		case "parallel":
			sawParallel = true
			if bp.SpeedupVsSequential <= 0 {
				t.Fatalf("parallel row missing speedup_vs_sequential: %+v", bp)
			}
		case "reuse":
			sawReuse = true
		case "scalar-per-seed":
			sawScalarPerSeed = true
			if bp.SeedsPerOp <= 0 || bp.SimsPerSec <= 0 {
				t.Fatalf("scalar-per-seed row missing seed accounting: %+v", bp)
			}
		case "sliced":
			sawSliced = true
			if bp.SeedsPerOp <= 0 || bp.SimsPerSec <= 0 {
				t.Fatalf("sliced row missing seed accounting: %+v", bp)
			}
			if bp.SpeedupVsScalarPerSeed <= 0 {
				t.Fatalf("sliced row missing speedup_vs_scalar_per_seed: %+v", bp)
			}
		case "scalar-per-seed-gossip":
			sawGossipScalar = true
			if bp.SeedsPerOp <= 0 || bp.SimsPerSec <= 0 {
				t.Fatalf("scalar-per-seed-gossip row missing seed accounting: %+v", bp)
			}
		case "sliced-gossip":
			sawGossipSliced = true
			if bp.SeedsPerOp <= 0 || bp.SimsPerSec <= 0 {
				t.Fatalf("sliced-gossip row missing seed accounting: %+v", bp)
			}
			if bp.SpeedupVsScalarPerSeed <= 0 {
				t.Fatalf("sliced-gossip row missing speedup_vs_scalar_per_seed: %+v", bp)
			}
		case "implicit-sequential":
			sawImplicitSeq = true
			if bp.HeapResidentBytes <= 0 || bp.BytesPerNode <= 0 {
				t.Fatalf("implicit row missing residency: %+v", bp)
			}
		case "implicit-parallel":
			sawImplicitPar = true
			if bp.SpeedupVsSequential <= 0 {
				t.Fatalf("implicit-parallel row missing speedup_vs_sequential: %+v", bp)
			}
		case "implicit-sliced":
			sawImplicitSliced = true
			if bp.SeedsPerOp <= 0 || bp.SimsPerSec <= 0 {
				t.Fatalf("implicit-sliced row missing seed accounting: %+v", bp)
			}
		}
	}
	if !sawParallel || !sawReuse {
		t.Fatalf("missing parallel or reuse rows: %+v", rep.Benchmarks)
	}
	if !sawScalarPerSeed || !sawSliced {
		t.Fatalf("missing multi-seed rows: %+v", rep.Benchmarks)
	}
	if !sawGossipScalar || !sawGossipSliced {
		t.Fatalf("missing gossip multi-seed rows: %+v", rep.Benchmarks)
	}
	if !sawImplicitSeq || !sawImplicitPar || !sawImplicitSliced {
		t.Fatalf("missing implicit rows: %+v", rep.Benchmarks)
	}
	if rep.GOMAXPROCS <= 0 || rep.NumCPU <= 0 {
		t.Fatalf("gomaxprocs=%d num_cpu=%d; want both positive", rep.GOMAXPROCS, rep.NumCPU)
	}
	if rep.MaxFeasible.N < 1024 {
		t.Fatalf("max feasible n = %d, want ≥ 1024", rep.MaxFeasible.N)
	}
	if rep.MaxFeasibleImplicit.N < 1024 {
		t.Fatalf("max feasible implicit n = %d, want ≥ 1024", rep.MaxFeasibleImplicit.N)
	}
	if len(rep.MemoryModel) != 2 {
		t.Fatalf("memory_model entries = %d, want 2 (implicit + materialized-csr)", len(rep.MemoryModel))
	}
	var implicitRes, csrRes int64
	for _, mp := range rep.MemoryModel {
		if mp.HeapResidentBytes <= 0 {
			t.Fatalf("memory_model point missing residency: %+v", mp)
		}
		switch mp.Mode {
		case "implicit":
			implicitRes = mp.HeapResidentBytes
		case "materialized-csr":
			csrRes = mp.HeapResidentBytes
		}
	}
	if implicitRes <= 0 || csrRes <= implicitRes {
		t.Fatalf("memory model should show materialized ≫ implicit, got csr=%d implicit=%d", csrRes, implicitRes)
	}
	if rep.Baseline.AllocsPerOp == 0 {
		t.Fatal("baseline missing")
	}
}

func TestBenchJSONBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, os.Stdout); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-only", "everything"}, os.Stdout); err == nil {
		t.Fatal("bad -only value accepted")
	}
}

// TestBenchJSONOnlySlicedFloor exercises the CI perf-floor smoke: only
// the multi-seed families are measured, and the -floor gate passes at a
// trivially low factor and fails at an impossible one.
func TestBenchJSONOnlySlicedFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark emission skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-quick", "-only", "sliced", "-floor", "0.01", "-o", out}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("benchmarks = %d, want 4 (2 multi-seed + 2 gossip)", len(rep.Benchmarks))
	}
	for _, bp := range rep.Benchmarks {
		switch bp.Engine {
		case "scalar-per-seed", "sliced", "scalar-per-seed-gossip", "sliced-gossip":
		default:
			t.Fatalf("-only sliced measured engine %q", bp.Engine)
		}
	}
	if err := run([]string{"-quick", "-only", "sliced", "-floor", "1e9", "-o", out}, os.Stdout); err == nil {
		t.Fatal("impossible floor passed")
	}
}

func TestMeasureRejectsBrokenEngineConfig(t *testing.T) {
	if _, err := measure("parallel", 0, 1, 1, 0); err == nil {
		t.Skip("testing.Benchmark swallows config errors via FailNow; nothing to assert")
	}
}
