package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestBenchJSONQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark emission skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-quick", "-o", out}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Schema != "lineartime/bench_sim/v3" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Benchmarks) != 5 {
		t.Fatalf("benchmarks = %d, want 5 (3 broadcaster + scalar-per-seed + sliced)", len(rep.Benchmarks))
	}
	var sawParallel, sawReuse, sawScalarPerSeed, sawSliced bool
	for _, bp := range rep.Benchmarks {
		if bp.NsPerRound <= 0 || bp.MsgsPerRound <= 0 {
			t.Fatalf("degenerate point %+v", bp)
		}
		switch bp.Engine {
		case "parallel":
			sawParallel = true
			if bp.SpeedupVsSequential <= 0 {
				t.Fatalf("parallel row missing speedup_vs_sequential: %+v", bp)
			}
		case "reuse":
			sawReuse = true
		case "scalar-per-seed":
			sawScalarPerSeed = true
			if bp.SeedsPerOp <= 0 || bp.SimsPerSec <= 0 {
				t.Fatalf("scalar-per-seed row missing seed accounting: %+v", bp)
			}
		case "sliced":
			sawSliced = true
			if bp.SeedsPerOp <= 0 || bp.SimsPerSec <= 0 {
				t.Fatalf("sliced row missing seed accounting: %+v", bp)
			}
			if bp.SpeedupVsScalarPerSeed <= 0 {
				t.Fatalf("sliced row missing speedup_vs_scalar_per_seed: %+v", bp)
			}
		}
	}
	if !sawParallel || !sawReuse {
		t.Fatalf("missing parallel or reuse rows: %+v", rep.Benchmarks)
	}
	if !sawScalarPerSeed || !sawSliced {
		t.Fatalf("missing multi-seed rows: %+v", rep.Benchmarks)
	}
	if rep.GOMAXPROCS <= 0 || rep.NumCPU <= 0 {
		t.Fatalf("gomaxprocs=%d num_cpu=%d; want both positive", rep.GOMAXPROCS, rep.NumCPU)
	}
	if rep.MaxFeasible.N < 1024 {
		t.Fatalf("max feasible n = %d, want ≥ 1024", rep.MaxFeasible.N)
	}
	if rep.Baseline.AllocsPerOp == 0 {
		t.Fatal("baseline missing")
	}
}

func TestBenchJSONBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, os.Stdout); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestMeasureRejectsBrokenEngineConfig(t *testing.T) {
	if _, err := measure("parallel", 0, 1, 1, 0); err == nil {
		t.Skip("testing.Benchmark swallows config errors via FailNow; nothing to assert")
	}
}
