package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestBenchJSONQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark emission skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-quick", "-o", out}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Schema != "lineartime/bench_sim/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(rep.Benchmarks))
	}
	for _, bp := range rep.Benchmarks {
		if bp.NsPerRound <= 0 || bp.MsgsPerRound <= 0 {
			t.Fatalf("degenerate point %+v", bp)
		}
	}
	if rep.MaxFeasible.N < 1024 {
		t.Fatalf("max feasible n = %d, want ≥ 1024", rep.MaxFeasible.N)
	}
	if rep.Baseline.AllocsPerOp == 0 {
		t.Fatal("baseline missing")
	}
}

func TestBenchJSONBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, os.Stdout); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestMeasureRejectsBrokenEngineConfig(t *testing.T) {
	if _, err := measure("parallel", 0, 1, 1, 0); err == nil {
		t.Skip("testing.Benchmark swallows config errors via FailNow; nothing to assert")
	}
}
