// Command benchjson runs the simulator engine benchmarks and emits
// BENCH_sim.json, the machine-readable performance trajectory committed
// at the repository root (the CHC-COMP-style standing benchmark: each
// PR that touches the engine regenerates the file, so regressions show
// up in the diff). It measures ns/round and allocs/round for the
// sequential and parallel engines at fixed (n, fanout) points, the
// amortized steady-state cost of repeated runs on one pooled arena
// (the engine/reuse family), the implicit-topology neighborcast
// engines (engine/implicit-*), and probes the largest feasible n under
// a per-round time budget — once for the materialized engine and once
// for the implicit one, whose O(n)-bits residency moves the wall from
// memory to time.
//
// The memory_model section pins the residency claim itself: the bytes
// a run keeps resident per node, measured by heap delta, for the same
// flood at the same n with the topology generated on the fly versus
// materialized as adjacency lists.
//
// Parallel rows are honest: the file records the real GOMAXPROCS and
// CPU count the run saw, and every parallel row carries its measured
// speedup_vs_sequential against the matching sequential row — a
// speedup near (or below) 1.0 on a single-CPU machine is reported as
// such, not hidden.
//
// Usage:
//
//	go run ./cmd/benchjson            # write BENCH_sim.json
//	go run ./cmd/benchjson -o out.json -quick
//	go run ./cmd/benchjson -maxprocs 8
//	go run ./cmd/benchjson -only sliced -floor 8   # CI perf-floor smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"lineartime/internal/graph"
	"lineartime/internal/scenario"
	"lineartime/internal/sim"
)

// broadcaster mirrors the benchmark protocol of the engine's
// engine_bench_test.go: every node sends fanout one-bit messages per
// round and halts after the horizon, with a persistent pre-sized
// outbox so the measurement is of the engine, not the harness.
type broadcaster struct {
	id, n, fanout, horizon int
	rounds                 int
	out                    []sim.Envelope
}

func (b *broadcaster) Send(round int) []sim.Envelope {
	out := b.out[:0]
	for k := 1; k <= b.fanout; k++ {
		out = append(out, sim.Envelope{From: b.id, To: (b.id + k) % b.n, Payload: sim.Bit(true)})
	}
	b.out = out
	return out
}

func (b *broadcaster) Deliver(round int, _ []sim.Envelope) { b.rounds++ }
func (b *broadcaster) Halted() bool                        { return b.rounds >= b.horizon }

func buildSystem(n, fanout, horizon int) (sim.Config, []*broadcaster) {
	ps := make([]sim.Protocol, n)
	bs := make([]*broadcaster, n)
	for j := 0; j < n; j++ {
		bs[j] = &broadcaster{id: j, n: n, fanout: fanout, horizon: horizon,
			out: make([]sim.Envelope, 0, fanout)}
		ps[j] = bs[j]
	}
	return sim.Config{Protocols: ps, MaxRounds: horizon + 2}, bs
}

// benchPoint is one measured engine configuration.
type benchPoint struct {
	Name         string  `json:"name"`
	Engine       string  `json:"engine"` // "sequential" | "parallel" | "reuse" | "reuse-parallel" | "scalar-per-seed" | "sliced" | "scalar-per-seed-gossip" | "sliced-gossip" | "implicit-sequential" | "implicit-parallel" | "implicit-sliced"
	N            int     `json:"n"`
	Fanout       int     `json:"fanout"`
	Rounds       int     `json:"rounds"`
	NsPerOp      float64 `json:"ns_per_op"`
	NsPerRound   float64 `json:"ns_per_round"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	MsgsPerRound int64   `json:"msgs_per_round"`
	// SpeedupVsSequential is set on parallel rows: the matching
	// sequential row's ns_per_op divided by this row's. Values at or
	// below 1.0 mean the worker pool bought nothing — expected when
	// GOMAXPROCS or the CPU count is 1.
	SpeedupVsSequential float64 `json:"speedup_vs_sequential,omitempty"`
	// SeedsPerOp is set on the multi-seed rows (the scalar-per-seed /
	// sliced family): the number of independent seeds one op evaluates.
	// On those rows ns_per_round and msgs_per_round are per seed.
	SeedsPerOp int `json:"seeds_per_op,omitempty"`
	// SimsPerSec is the multi-seed rows' throughput: seeds_per_op
	// simulations divided by the op's wall time.
	SimsPerSec float64 `json:"sims_per_sec,omitempty"`
	// SpeedupVsScalarPerSeed is set on sliced rows: the matching
	// scalar-per-seed row's sims_per_sec divided into this row's — the
	// honest bit-slicing gain at the same shape and seed count.
	SpeedupVsScalarPerSeed float64 `json:"speedup_vs_scalar_per_seed,omitempty"`
	// HeapResidentBytes / BytesPerNode are set on implicit rows: the
	// heap the whole run keeps resident (topology + system + engine
	// planes, measured by GC-fenced heap delta) and that residency per
	// node.
	HeapResidentBytes int64   `json:"heap_resident_bytes,omitempty"`
	BytesPerNode      float64 `json:"bytes_per_node,omitempty"`
}

// slicedSpec is the multi-seed benchmark workload: the flooding
// comparator under per-seed random crashes, so the 64 lanes genuinely
// diverge (different crash sets, rounds and message counts) instead of
// measuring a degenerate all-lanes-identical batch.
func slicedSpec(n, t int) scenario.Spec {
	sp := scenario.MustLookup("consensus/flooding").Spec(n, t, 1)
	sp.Fault = scenario.FaultModel{Kind: scenario.RandomCrashes, Count: t, Horizon: t + 2}
	return sp
}

// measureSliced measures the multi-seed batch path at one shape:
// "scalar-per-seed" runs the seeds as sequential scenario.Run calls
// (one op = seeds full scalar simulations, the pre-slicing cost of a
// multi-seed sweep point); "sliced" evaluates the same seeds as one
// scenario.RunSeeds batch riding the bit-sliced engine.
func measureSliced(engine string, n, t, seeds int) (benchPoint, error) {
	sp := slicedSpec(n, t)
	series := make([]uint64, seeds)
	for i := range series {
		series[i] = uint64(i + 1)
	}
	var runErr error
	var body func(b *testing.B)
	switch engine {
	case "scalar-per-seed":
		body = func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, seed := range series {
					one := sp
					one.Seed = seed
					if _, err := scenario.Run(one); err != nil {
						runErr = err
						b.FailNow()
					}
				}
			}
		}
	case "sliced":
		body = func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, errs := scenario.RunSeeds(sp, series)
				for _, err := range errs {
					if err != nil {
						runErr = err
						b.FailNow()
					}
				}
			}
		}
	default:
		return benchPoint{}, fmt.Errorf("unknown engine %q", engine)
	}
	// One reference run supplies the row's round and message
	// bookkeeping (seed 1; per-seed numbers vary with the crash draw).
	ref, err := scenario.Run(sp)
	if err != nil {
		return benchPoint{}, err
	}
	res := testing.Benchmark(body)
	if runErr != nil {
		return benchPoint{}, runErr
	}
	nsPerOp := float64(res.NsPerOp())
	return benchPoint{
		Name:         fmt.Sprintf("engine/%s/n=%d/seeds=%d", engine, n, seeds),
		Engine:       engine,
		N:            n,
		Rounds:       ref.Metrics.Rounds,
		NsPerOp:      nsPerOp,
		NsPerRound:   nsPerOp / float64(seeds) / float64(ref.Metrics.Rounds),
		AllocsPerOp:  res.AllocsPerOp(),
		BytesPerOp:   res.AllocedBytesPerOp(),
		MsgsPerRound: ref.Metrics.Messages / int64(ref.Metrics.Rounds),
		SeedsPerOp:   seeds,
		SimsPerSec:   float64(seeds) * 1e9 / nsPerOp,
	}, nil
}

// gossipSpecs builds the sliced-gossip benchmark workload: one
// gossip/expander shape shared by every lane — same topology seed, so
// the whole batch forms one sliced group — with per-lane random-crash
// adversaries, so the lanes genuinely diverge in crash sets, rounds
// and traffic instead of measuring a degenerate identical batch.
func gossipSpecs(n, t, seeds int) []scenario.Spec {
	base := scenario.MustLookup("gossip/expander").Spec(n, t, 1)
	sps := make([]scenario.Spec, seeds)
	for i := range sps {
		sps[i] = base
		sps[i].Fault = scenario.FaultModel{
			Kind: scenario.RandomCrashes, Count: t, Horizon: t + 2, Seed: uint64(1001 + i),
		}
	}
	return sps
}

// measureSlicedGossip measures the fault-swept gossip batch path at one
// shape: "scalar-per-seed-gossip" runs the lanes as sequential
// scenario.Run calls (one op = seeds full scalar gossip simulations);
// "sliced-gossip" evaluates the same specs as one
// scenario.ExecuteBatch call riding the bit-sliced gossip machine.
func measureSlicedGossip(engine string, n, t, seeds int) (benchPoint, error) {
	sps := gossipSpecs(n, t, seeds)
	var runErr error
	var body func(b *testing.B)
	switch engine {
	case "scalar-per-seed-gossip":
		body = func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, sp := range sps {
					if _, err := scenario.Run(sp); err != nil {
						runErr = err
						b.FailNow()
					}
				}
			}
		}
	case "sliced-gossip":
		body = func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, errs := scenario.ExecuteBatch(sps)
				for _, err := range errs {
					if err != nil {
						runErr = err
						b.FailNow()
					}
				}
			}
		}
	default:
		return benchPoint{}, fmt.Errorf("unknown engine %q", engine)
	}
	// One reference run supplies the row's round and message
	// bookkeeping (lane 0; per-lane numbers vary with the crash draw).
	ref, err := scenario.Run(sps[0])
	if err != nil {
		return benchPoint{}, err
	}
	res := testing.Benchmark(body)
	if runErr != nil {
		return benchPoint{}, runErr
	}
	nsPerOp := float64(res.NsPerOp())
	return benchPoint{
		Name:         fmt.Sprintf("engine/%s/n=%d/seeds=%d", engine, n, seeds),
		Engine:       engine,
		N:            n,
		Rounds:       ref.Metrics.Rounds,
		NsPerOp:      nsPerOp,
		NsPerRound:   nsPerOp / float64(seeds) / float64(ref.Metrics.Rounds),
		AllocsPerOp:  res.AllocsPerOp(),
		BytesPerOp:   res.AllocedBytesPerOp(),
		MsgsPerRound: ref.Metrics.Messages / int64(ref.Metrics.Rounds),
		SeedsPerOp:   seeds,
		SimsPerSec:   float64(seeds) * 1e9 / nsPerOp,
	}, nil
}

// castBroadcaster is the neighborcast twin of broadcaster: every node
// casts one bit to its whole d-regular neighborhood every round for
// horizon rounds, so msgs/round is n·d — the same traffic shape the
// materialized rows measure, with the topology regenerated on the fly.
type castBroadcaster struct {
	n, horizon int
}

func (c *castBroadcaster) N() int                     { return c.n }
func (c *castBroadcaster) Cast(int, int) (bool, bool) { return true, true }
func (c *castBroadcaster) Absorb(int, int, int, int)  {}
func (c *castBroadcaster) Done(rounds int) bool       { return rounds >= c.horizon }

// castLaneBroadcaster is the sliced variant: all lanes cast every
// round.
type castLaneBroadcaster struct {
	n, horizon int
}

func (c *castLaneBroadcaster) N() int                               { return c.n }
func (c *castLaneBroadcaster) CastLanes(int, int) (uint64, uint64)  { return ^uint64(0), ^uint64(0) }
func (c *castLaneBroadcaster) AbsorbLanes(int, int, uint64, uint64) {}
func (c *castLaneBroadcaster) Done(rounds int) bool                 { return rounds >= c.horizon }

// residentBytes reports the GC-fenced heap growth of build: how many
// bytes the value it returns keeps resident. Both fences run the
// collector twice so floating garbage from earlier measurements
// cannot bleed into the delta.
func residentBytes(build func() any) int64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&before)
	keep := build()
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&after)
	delta := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	runtime.KeepAlive(keep)
	return delta
}

// implicitResident measures the heap a whole neighborcast run keeps
// resident — topology, system, engine arena — by constructing all of
// it fresh inside the GC fence and running once.
func implicitResident(engine string, n, d, horizon, workers int) (int64, error) {
	var runErr error
	res := residentBytes(func() any {
		sh, err := graph.NewShift(n, d, 1)
		if err != nil {
			runErr = err
			return nil
		}
		rt := sim.NewRuntime()
		if engine == "implicit-sliced" {
			sys := &castLaneBroadcaster{n: n, horizon: horizon}
			cfg := sim.CastSlicedConfig{System: sys, Topology: sh, MaxRounds: horizon + 2, Lanes: sim.MaxLanes}
			if _, err := rt.RunCastSliced(cfg); err != nil {
				runErr = err
			}
			return []any{sh, rt, sys}
		}
		sys := &castBroadcaster{n: n, horizon: horizon}
		cfg := sim.CastConfig{System: sys, Topology: sh, MaxRounds: horizon + 2}
		if engine == "implicit-parallel" {
			_, err = rt.RunCastParallel(cfg, workers)
		} else {
			_, err = rt.RunCast(cfg)
		}
		if err != nil {
			runErr = err
		}
		return []any{sh, rt, sys}
	})
	return res, runErr
}

// measureImplicit measures the neighborcast engines over an implicit
// shift topology at one (n, d) shape. One op is a full run on a pooled
// Runtime; heap residency is measured once, outside the timing loop,
// for the whole working set (topology + system + arena) of a run.
func measureImplicit(engine string, n, d, horizon, workers int) (benchPoint, error) {
	sh, err := graph.NewShift(n, d, 1)
	if err != nil {
		return benchPoint{}, err
	}
	rt := sim.NewRuntime()
	defer rt.Close()
	var runErr error
	var body func(b *testing.B)
	msgsPerRound := int64(n) * int64(d)
	seedsPer := 0
	switch engine {
	case "implicit-sequential", "implicit-parallel":
		sys := &castBroadcaster{n: n, horizon: horizon}
		cfg := sim.CastConfig{System: sys, Topology: sh, MaxRounds: horizon + 2}
		run := func() (*sim.CastResult, error) { return rt.RunCast(cfg) }
		if engine == "implicit-parallel" {
			run = func() (*sim.CastResult, error) { return rt.RunCastParallel(cfg, workers) }
		}
		body = func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := run(); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		}
	case "implicit-sliced":
		sys := &castLaneBroadcaster{n: n, horizon: horizon}
		cfg := sim.CastSlicedConfig{System: sys, Topology: sh, MaxRounds: horizon + 2, Lanes: sim.MaxLanes}
		seedsPer = sim.MaxLanes
		body = func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := rt.RunCastSliced(cfg); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		}
	default:
		return benchPoint{}, fmt.Errorf("unknown engine %q", engine)
	}
	resident, err := implicitResident(engine, n, d, horizon, workers)
	if err != nil {
		return benchPoint{}, err
	}
	res := testing.Benchmark(body)
	if runErr != nil {
		return benchPoint{}, runErr
	}
	nsPerOp := float64(res.NsPerOp())
	bp := benchPoint{
		Name:              fmt.Sprintf("engine/%s/n=%d/d=%d", engine, n, d),
		Engine:            engine,
		N:                 n,
		Fanout:            d,
		Rounds:            horizon,
		NsPerOp:           nsPerOp,
		NsPerRound:        nsPerOp / float64(horizon),
		AllocsPerOp:       res.AllocsPerOp(),
		BytesPerOp:        res.AllocedBytesPerOp(),
		MsgsPerRound:      msgsPerRound,
		HeapResidentBytes: resident,
		BytesPerNode:      float64(resident) / float64(n),
	}
	if seedsPer > 0 {
		bp.SeedsPerOp = seedsPer
		bp.NsPerRound = nsPerOp / float64(seedsPer) / float64(horizon)
		bp.SimsPerSec = float64(seedsPer) * 1e9 / nsPerOp
	}
	return bp, nil
}

func measure(engine string, n, fanout, horizon, workers int) (benchPoint, error) {
	cfg, bs := buildSystem(n, fanout, horizon)
	reset := func() {
		for _, bc := range bs {
			bc.rounds = 0
		}
	}
	var runErr error
	var body func(b *testing.B)
	switch engine {
	case "sequential", "parallel":
		// The public path: scenario.Execute on a pooled arena, result
		// detached per run.
		exec := scenario.Serial
		if engine == "parallel" {
			exec = scenario.Parallel(workers)
		}
		body = func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				reset()
				if _, err := scenario.Execute(cfg, exec); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		}
	case "reuse", "reuse-parallel":
		// The arena path: b.N consecutive runs on one Runtime, so the
		// per-op numbers are the amortized steady-state cost of a
		// repeated run (allocs/op ~0 once the buffers have grown).
		rt := sim.NewRuntime()
		defer rt.Close()
		run := rt.Run
		if engine == "reuse-parallel" {
			run = func(cfg sim.Config) (*sim.Result, error) { return rt.RunParallel(cfg, workers) }
		}
		body = func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				reset()
				if _, err := run(cfg); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		}
	default:
		return benchPoint{}, fmt.Errorf("unknown engine %q", engine)
	}
	res := testing.Benchmark(body)
	if runErr != nil {
		return benchPoint{}, runErr
	}
	nsPerOp := float64(res.NsPerOp())
	return benchPoint{
		Name:         fmt.Sprintf("engine/%s/n=%d/fanout=%d", engine, n, fanout),
		Engine:       engine,
		N:            n,
		Fanout:       fanout,
		Rounds:       horizon,
		NsPerOp:      nsPerOp,
		NsPerRound:   nsPerOp / float64(horizon),
		AllocsPerOp:  res.AllocsPerOp(),
		BytesPerOp:   res.AllocedBytesPerOp(),
		MsgsPerRound: int64(n) * int64(fanout),
	}, nil
}

// fillSpeedups sets speedup_vs_sequential on every parallel-flavoured
// row that has a matching same-shape row of its sequential flavour.
func fillSpeedups(points []benchPoint) {
	base := func(engine string, n, fanout int) float64 {
		for i := range points {
			p := &points[i]
			if p.Engine == engine && p.N == n && p.Fanout == fanout {
				return p.NsPerOp
			}
		}
		return 0
	}
	for i := range points {
		p := &points[i]
		var seq float64
		switch p.Engine {
		case "parallel":
			seq = base("sequential", p.N, p.Fanout)
		case "reuse-parallel":
			seq = base("reuse", p.N, p.Fanout)
		case "implicit-parallel":
			seq = base("implicit-sequential", p.N, p.Fanout)
		case "sliced", "sliced-gossip":
			scalar := "scalar-per-seed"
			if p.Engine == "sliced-gossip" {
				scalar = "scalar-per-seed-gossip"
			}
			for j := range points {
				q := &points[j]
				if q.Engine == scalar && q.N == p.N && q.SeedsPerOp == p.SeedsPerOp && q.SimsPerSec > 0 {
					p.SpeedupVsScalarPerSeed = p.SimsPerSec / q.SimsPerSec
				}
			}
			continue
		default:
			continue
		}
		if seq > 0 && p.NsPerOp > 0 {
			p.SpeedupVsSequential = seq / p.NsPerOp
		}
	}
}

// maxFeasibleN doubles n until one round of the sequential engine at
// the given fanout exceeds the time budget (or the memory-bounding cap
// is reached) and reports the last n that fit.
func maxFeasibleN(fanout int, budget time.Duration, capN int) (int, float64) {
	const horizon = 5
	best, bestNs := 0, 0.0
	for n := 1024; n <= capN; n *= 2 {
		cfg, _ := buildSystem(n, fanout, horizon)
		start := time.Now()
		if _, err := scenario.Execute(cfg, scenario.Serial); err != nil {
			break
		}
		perRound := time.Since(start) / horizon
		if perRound > budget {
			break
		}
		best, bestNs = n, float64(perRound.Nanoseconds())
	}
	return best, bestNs
}

// maxFeasibleImplicitN is the implicit-topology counterpart: it doubles
// n until one neighborcast round over a generated d-regular shift
// topology exceeds the budget. No adjacency is ever materialized, so
// the probe's cap expresses a time wall, not a memory wall.
func maxFeasibleImplicitN(d int, budget time.Duration, capN int) (int, float64, error) {
	const horizon = 5
	best, bestNs := 0, 0.0
	rt := sim.NewRuntime()
	defer rt.Close()
	for n := 1024; n <= capN; n *= 2 {
		sh, err := graph.NewShift(n, d, 1)
		if err != nil {
			return 0, 0, err
		}
		cfg := sim.CastConfig{System: &castBroadcaster{n: n, horizon: horizon},
			Topology: sh, MaxRounds: horizon + 2}
		start := time.Now()
		if _, err := rt.RunCast(cfg); err != nil {
			return 0, 0, err
		}
		perRound := time.Since(start) / horizon
		if perRound > budget {
			break
		}
		best, bestNs = n, float64(perRound.Nanoseconds())
	}
	return best, bestNs, nil
}

// memoryPoint is one measured residency shape of the memory_model
// section: the heap one flood run keeps resident with the topology
// generated on the fly versus materialized as adjacency lists.
type memoryPoint struct {
	Mode              string  `json:"mode"` // "implicit" | "materialized-csr"
	N                 int     `json:"n"`
	Degree            int     `json:"degree"`
	HeapResidentBytes int64   `json:"heap_resident_bytes"`
	BytesPerNode      float64 `json:"bytes_per_node"`
}

// measureMemory measures both modes of the memory model at one (n, d)
// shape: the full working set — topology, system, engine arena — of a
// short neighborcast flood, by GC-fenced heap delta.
func measureMemory(n, d int) ([]memoryPoint, error) {
	var firstErr error
	build := func(materialize bool) int64 {
		return residentBytes(func() any {
			sh, err := graph.NewShift(n, d, 1)
			if err != nil {
				firstErr = err
				return nil
			}
			var nb graph.Neighborhood = sh
			if materialize {
				nb = graph.Materialize(sh)
			}
			rt := sim.NewRuntime()
			sys := &castBroadcaster{n: n, horizon: 2}
			if _, err := rt.RunCast(sim.CastConfig{System: sys, Topology: nb, MaxRounds: 4}); err != nil {
				firstErr = err
				return nil
			}
			return []any{nb, rt, sys}
		})
	}
	points := []memoryPoint{
		{Mode: "implicit", N: n, Degree: d, HeapResidentBytes: build(false)},
		{Mode: "materialized-csr", N: n, Degree: d, HeapResidentBytes: build(true)},
	}
	if firstErr != nil {
		return nil, firstErr
	}
	for i := range points {
		points[i].BytesPerNode = float64(points[i].HeapResidentBytes) / float64(n)
	}
	return points, nil
}

// report is the BENCH_sim.json schema.
type report struct {
	Schema string `json:"schema"`
	Go     string `json:"go"`
	// GOMAXPROCS and NumCPU are the real values of the measuring run
	// (after any -maxprocs override); parallel rows mean nothing
	// without them.
	GOMAXPROCS  int          `json:"gomaxprocs"`
	NumCPU      int          `json:"num_cpu"`
	Benchmarks  []benchPoint `json:"benchmarks"`
	MaxFeasible struct {
		Fanout           int     `json:"fanout"`
		BudgetMsPerRound float64 `json:"budget_ms_per_round"`
		N                int     `json:"n"`
		NsPerRound       float64 `json:"ns_per_round"`
	} `json:"max_feasible_n"`
	// MaxFeasibleImplicit is the same probe on the neighborcast engine
	// over a generated shift topology: no adjacency is resident, so
	// the cap is time, not memory.
	MaxFeasibleImplicit struct {
		Degree           int     `json:"degree"`
		BudgetMsPerRound float64 `json:"budget_ms_per_round"`
		N                int     `json:"n"`
		NsPerRound       float64 `json:"ns_per_round"`
	} `json:"max_feasible_n_implicit"`
	// MemoryModel pins the residency claim behind the implicit mode:
	// bytes/node resident for the same flood at the same shape,
	// topology generated versus materialized.
	MemoryModel []memoryPoint `json:"memory_model"`
	// Baseline freezes the pre-refactor engine's headline numbers
	// (BenchmarkEngine, n=1000, fanout 8, 20 rounds, allocation-clean
	// harness) so the trajectory keeps its origin.
	Baseline struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
		Note        string  `json:"note"`
	} `json:"baseline_pre_refactor"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "BENCH_sim.json", "output path ('-' for stdout)")
	quick := fs.Bool("quick", false, "tiny sizes (CI smoke)")
	budgetMs := fs.Int("budget", 100, "max-feasible-n time budget, ms per round")
	maxprocs := fs.Int("maxprocs", 0, "override GOMAXPROCS for the measuring run (0 = leave as is)")
	floor := fs.Float64("floor", 0, "fail unless every sliced row's speedup_vs_scalar_per_seed reaches this factor (0 = no check)")
	only := fs.String("only", "", `restrict the measurement: "sliced" runs only the multi-seed scalar/sliced families (the CI perf-floor smoke)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *only != "" && *only != "sliced" {
		return fmt.Errorf("unknown -only value %q (have: sliced)", *only)
	}
	if *maxprocs > 0 {
		runtime.GOMAXPROCS(*maxprocs)
	}

	type point struct {
		engine            string
		n, fanout, rounds int
	}
	points := []point{
		{"sequential", 256, 8, 20},
		{"sequential", 1000, 8, 20}, // the headline BenchmarkEngine shape
		{"sequential", 4096, 8, 20},
		{"sequential", 256, 64, 20},
		{"parallel", 1000, 8, 20},
		{"parallel", 4096, 8, 20},
		{"reuse", 1000, 8, 20},
		{"reuse", 4096, 8, 20},
		{"reuse-parallel", 4096, 8, 20},
	}
	implicitPoints := []point{
		{"implicit-sequential", 4096, 8, 20},
		{"implicit-sequential", 1 << 17, 8, 20},
		{"implicit-sequential", 1 << 20, 8, 5},
		{"implicit-parallel", 1 << 17, 8, 20},
		{"implicit-sliced", 4096, 8, 20},
	}
	memShapes := [][2]int{{1 << 17, 8}, {1 << 20, 8}}
	capN := 1 << 17
	capImplicitN := 1 << 22
	if *quick {
		points = []point{
			{"sequential", 64, 4, 5},
			{"parallel", 64, 4, 5},
			{"reuse", 64, 4, 5},
		}
		implicitPoints = []point{
			{"implicit-sequential", 1024, 4, 5},
			{"implicit-parallel", 1024, 4, 5},
			{"implicit-sliced", 1024, 4, 5},
		}
		memShapes = [][2]int{{4096, 8}}
		capN = 2048
		capImplicitN = 1 << 14
	}
	if *only == "sliced" {
		points = nil
		implicitPoints = nil
		memShapes = nil
	}

	var rep report
	rep.Schema = "lineartime/bench_sim/v5"
	rep.Go = runtime.Version()
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.NumCPU = runtime.NumCPU()
	for _, p := range points {
		bp, err := measure(p.engine, p.n, p.fanout, p.rounds, 0)
		if err != nil {
			return fmt.Errorf("%s n=%d: %w", p.engine, p.n, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, bp)
	}
	type slicedPt struct {
		engine         string
		n, t, seedsPer int
	}
	slicedPoints := []slicedPt{
		// The headline multi-seed shape: 64 seeds at n=1000 — the
		// acceptance comparison of the bit-sliced engine.
		{"scalar-per-seed", 1000, 16, 64},
		{"sliced", 1000, 16, 64},
	}
	if *quick {
		slicedPoints = []slicedPt{
			{"scalar-per-seed", 64, 8, 16},
			{"sliced", 64, 8, 16},
		}
	}
	for _, p := range slicedPoints {
		bp, err := measureSliced(p.engine, p.n, p.t, p.seedsPer)
		if err != nil {
			return fmt.Errorf("%s n=%d: %w", p.engine, p.n, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, bp)
	}
	gossipPoints := []slicedPt{
		// The fault-swept gossip headline: one expander topology, a
		// word of crash adversaries per batch.
		{"scalar-per-seed-gossip", 1000, 16, 64},
		{"sliced-gossip", 1000, 16, 64},
	}
	if *quick {
		gossipPoints = []slicedPt{
			{"scalar-per-seed-gossip", 64, 8, 16},
			{"sliced-gossip", 64, 8, 16},
		}
	}
	for _, p := range gossipPoints {
		bp, err := measureSlicedGossip(p.engine, p.n, p.t, p.seedsPer)
		if err != nil {
			return fmt.Errorf("%s n=%d: %w", p.engine, p.n, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, bp)
	}
	for _, p := range implicitPoints {
		bp, err := measureImplicit(p.engine, p.n, p.fanout, p.rounds, 0)
		if err != nil {
			return fmt.Errorf("%s n=%d: %w", p.engine, p.n, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, bp)
	}
	fillSpeedups(rep.Benchmarks)
	if *floor > 0 {
		checked := 0
		for _, p := range rep.Benchmarks {
			if p.SpeedupVsScalarPerSeed == 0 {
				continue
			}
			checked++
			if p.SpeedupVsScalarPerSeed < *floor {
				return fmt.Errorf("%s: speedup_vs_scalar_per_seed %.2f below floor %.2f", p.Name, p.SpeedupVsScalarPerSeed, *floor)
			}
		}
		if checked == 0 {
			return fmt.Errorf("-floor %.2f: no sliced rows to check", *floor)
		}
	}
	for _, shape := range memShapes {
		pts, err := measureMemory(shape[0], shape[1])
		if err != nil {
			return fmt.Errorf("memory model n=%d: %w", shape[0], err)
		}
		rep.MemoryModel = append(rep.MemoryModel, pts...)
	}
	if *only == "" {
		rep.MaxFeasible.Fanout = 8
		rep.MaxFeasible.BudgetMsPerRound = float64(*budgetMs)
		rep.MaxFeasible.N, rep.MaxFeasible.NsPerRound =
			maxFeasibleN(8, time.Duration(*budgetMs)*time.Millisecond, capN)
		rep.MaxFeasibleImplicit.Degree = 8
		rep.MaxFeasibleImplicit.BudgetMsPerRound = float64(*budgetMs)
		var probeErr error
		rep.MaxFeasibleImplicit.N, rep.MaxFeasibleImplicit.NsPerRound, probeErr =
			maxFeasibleImplicitN(8, time.Duration(*budgetMs)*time.Millisecond, capImplicitN)
		if probeErr != nil {
			return fmt.Errorf("implicit max-n probe: %w", probeErr)
		}
	}
	rep.Baseline.Name = "engine/sequential/n=1000/fanout=8"
	rep.Baseline.NsPerOp = 10534134
	rep.Baseline.AllocsPerOp = 140036
	rep.Baseline.BytesPerOp = 12181963
	rep.Baseline.Note = "pre-refactor engine (per-round inbox allocation, sort.Slice ordering); median of 3 at -benchtime 2s"

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}
