// Command benchjson runs the simulator engine benchmarks and emits
// BENCH_sim.json, the machine-readable performance trajectory committed
// at the repository root (the CHC-COMP-style standing benchmark: each
// PR that touches the engine regenerates the file, so regressions show
// up in the diff). It measures ns/round and allocs/round for the
// sequential and parallel engines at fixed (n, fanout) points, the
// amortized steady-state cost of repeated runs on one pooled arena
// (the engine/reuse family), and probes the largest feasible n under a
// per-round time budget.
//
// Parallel rows are honest: the file records the real GOMAXPROCS and
// CPU count the run saw, and every parallel row carries its measured
// speedup_vs_sequential against the matching sequential row — a
// speedup near (or below) 1.0 on a single-CPU machine is reported as
// such, not hidden.
//
// Usage:
//
//	go run ./cmd/benchjson            # write BENCH_sim.json
//	go run ./cmd/benchjson -o out.json -quick
//	go run ./cmd/benchjson -maxprocs 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"lineartime/internal/scenario"
	"lineartime/internal/sim"
)

// broadcaster mirrors the benchmark protocol of the engine's
// engine_bench_test.go: every node sends fanout one-bit messages per
// round and halts after the horizon, with a persistent pre-sized
// outbox so the measurement is of the engine, not the harness.
type broadcaster struct {
	id, n, fanout, horizon int
	rounds                 int
	out                    []sim.Envelope
}

func (b *broadcaster) Send(round int) []sim.Envelope {
	out := b.out[:0]
	for k := 1; k <= b.fanout; k++ {
		out = append(out, sim.Envelope{From: b.id, To: (b.id + k) % b.n, Payload: sim.Bit(true)})
	}
	b.out = out
	return out
}

func (b *broadcaster) Deliver(round int, _ []sim.Envelope) { b.rounds++ }
func (b *broadcaster) Halted() bool                        { return b.rounds >= b.horizon }

func buildSystem(n, fanout, horizon int) (sim.Config, []*broadcaster) {
	ps := make([]sim.Protocol, n)
	bs := make([]*broadcaster, n)
	for j := 0; j < n; j++ {
		bs[j] = &broadcaster{id: j, n: n, fanout: fanout, horizon: horizon,
			out: make([]sim.Envelope, 0, fanout)}
		ps[j] = bs[j]
	}
	return sim.Config{Protocols: ps, MaxRounds: horizon + 2}, bs
}

// benchPoint is one measured engine configuration.
type benchPoint struct {
	Name         string  `json:"name"`
	Engine       string  `json:"engine"` // "sequential" | "parallel" | "reuse" | "reuse-parallel" | "scalar-per-seed" | "sliced"
	N            int     `json:"n"`
	Fanout       int     `json:"fanout"`
	Rounds       int     `json:"rounds"`
	NsPerOp      float64 `json:"ns_per_op"`
	NsPerRound   float64 `json:"ns_per_round"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	MsgsPerRound int64   `json:"msgs_per_round"`
	// SpeedupVsSequential is set on parallel rows: the matching
	// sequential row's ns_per_op divided by this row's. Values at or
	// below 1.0 mean the worker pool bought nothing — expected when
	// GOMAXPROCS or the CPU count is 1.
	SpeedupVsSequential float64 `json:"speedup_vs_sequential,omitempty"`
	// SeedsPerOp is set on the multi-seed rows (the scalar-per-seed /
	// sliced family): the number of independent seeds one op evaluates.
	// On those rows ns_per_round and msgs_per_round are per seed.
	SeedsPerOp int `json:"seeds_per_op,omitempty"`
	// SimsPerSec is the multi-seed rows' throughput: seeds_per_op
	// simulations divided by the op's wall time.
	SimsPerSec float64 `json:"sims_per_sec,omitempty"`
	// SpeedupVsScalarPerSeed is set on sliced rows: the matching
	// scalar-per-seed row's sims_per_sec divided into this row's — the
	// honest bit-slicing gain at the same shape and seed count.
	SpeedupVsScalarPerSeed float64 `json:"speedup_vs_scalar_per_seed,omitempty"`
}

// slicedSpec is the multi-seed benchmark workload: the flooding
// comparator under per-seed random crashes, so the 64 lanes genuinely
// diverge (different crash sets, rounds and message counts) instead of
// measuring a degenerate all-lanes-identical batch.
func slicedSpec(n, t int) scenario.Spec {
	sp := scenario.MustLookup("consensus/flooding").Spec(n, t, 1)
	sp.Fault = scenario.FaultModel{Kind: scenario.RandomCrashes, Count: t, Horizon: t + 2}
	return sp
}

// measureSliced measures the multi-seed batch path at one shape:
// "scalar-per-seed" runs the seeds as sequential scenario.Run calls
// (one op = seeds full scalar simulations, the pre-slicing cost of a
// multi-seed sweep point); "sliced" evaluates the same seeds as one
// scenario.RunSeeds batch riding the bit-sliced engine.
func measureSliced(engine string, n, t, seeds int) (benchPoint, error) {
	sp := slicedSpec(n, t)
	series := make([]uint64, seeds)
	for i := range series {
		series[i] = uint64(i + 1)
	}
	var runErr error
	var body func(b *testing.B)
	switch engine {
	case "scalar-per-seed":
		body = func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, seed := range series {
					one := sp
					one.Seed = seed
					if _, err := scenario.Run(one); err != nil {
						runErr = err
						b.FailNow()
					}
				}
			}
		}
	case "sliced":
		body = func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, errs := scenario.RunSeeds(sp, series)
				for _, err := range errs {
					if err != nil {
						runErr = err
						b.FailNow()
					}
				}
			}
		}
	default:
		return benchPoint{}, fmt.Errorf("unknown engine %q", engine)
	}
	// One reference run supplies the row's round and message
	// bookkeeping (seed 1; per-seed numbers vary with the crash draw).
	ref, err := scenario.Run(sp)
	if err != nil {
		return benchPoint{}, err
	}
	res := testing.Benchmark(body)
	if runErr != nil {
		return benchPoint{}, runErr
	}
	nsPerOp := float64(res.NsPerOp())
	return benchPoint{
		Name:         fmt.Sprintf("engine/%s/n=%d/seeds=%d", engine, n, seeds),
		Engine:       engine,
		N:            n,
		Rounds:       ref.Metrics.Rounds,
		NsPerOp:      nsPerOp,
		NsPerRound:   nsPerOp / float64(seeds) / float64(ref.Metrics.Rounds),
		AllocsPerOp:  res.AllocsPerOp(),
		BytesPerOp:   res.AllocedBytesPerOp(),
		MsgsPerRound: ref.Metrics.Messages / int64(ref.Metrics.Rounds),
		SeedsPerOp:   seeds,
		SimsPerSec:   float64(seeds) * 1e9 / nsPerOp,
	}, nil
}

func measure(engine string, n, fanout, horizon, workers int) (benchPoint, error) {
	cfg, bs := buildSystem(n, fanout, horizon)
	reset := func() {
		for _, bc := range bs {
			bc.rounds = 0
		}
	}
	var runErr error
	var body func(b *testing.B)
	switch engine {
	case "sequential", "parallel":
		// The public path: scenario.Execute on a pooled arena, result
		// detached per run.
		exec := scenario.Serial
		if engine == "parallel" {
			exec = scenario.Parallel(workers)
		}
		body = func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				reset()
				if _, err := scenario.Execute(cfg, exec); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		}
	case "reuse", "reuse-parallel":
		// The arena path: b.N consecutive runs on one Runtime, so the
		// per-op numbers are the amortized steady-state cost of a
		// repeated run (allocs/op ~0 once the buffers have grown).
		rt := sim.NewRuntime()
		defer rt.Close()
		run := rt.Run
		if engine == "reuse-parallel" {
			run = func(cfg sim.Config) (*sim.Result, error) { return rt.RunParallel(cfg, workers) }
		}
		body = func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				reset()
				if _, err := run(cfg); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		}
	default:
		return benchPoint{}, fmt.Errorf("unknown engine %q", engine)
	}
	res := testing.Benchmark(body)
	if runErr != nil {
		return benchPoint{}, runErr
	}
	nsPerOp := float64(res.NsPerOp())
	return benchPoint{
		Name:         fmt.Sprintf("engine/%s/n=%d/fanout=%d", engine, n, fanout),
		Engine:       engine,
		N:            n,
		Fanout:       fanout,
		Rounds:       horizon,
		NsPerOp:      nsPerOp,
		NsPerRound:   nsPerOp / float64(horizon),
		AllocsPerOp:  res.AllocsPerOp(),
		BytesPerOp:   res.AllocedBytesPerOp(),
		MsgsPerRound: int64(n) * int64(fanout),
	}, nil
}

// fillSpeedups sets speedup_vs_sequential on every parallel-flavoured
// row that has a matching same-shape row of its sequential flavour.
func fillSpeedups(points []benchPoint) {
	base := func(engine string, n, fanout int) float64 {
		for i := range points {
			p := &points[i]
			if p.Engine == engine && p.N == n && p.Fanout == fanout {
				return p.NsPerOp
			}
		}
		return 0
	}
	for i := range points {
		p := &points[i]
		var seq float64
		switch p.Engine {
		case "parallel":
			seq = base("sequential", p.N, p.Fanout)
		case "reuse-parallel":
			seq = base("reuse", p.N, p.Fanout)
		case "sliced":
			for j := range points {
				q := &points[j]
				if q.Engine == "scalar-per-seed" && q.N == p.N && q.SeedsPerOp == p.SeedsPerOp && q.SimsPerSec > 0 {
					p.SpeedupVsScalarPerSeed = p.SimsPerSec / q.SimsPerSec
				}
			}
			continue
		default:
			continue
		}
		if seq > 0 && p.NsPerOp > 0 {
			p.SpeedupVsSequential = seq / p.NsPerOp
		}
	}
}

// maxFeasibleN doubles n until one round of the sequential engine at
// the given fanout exceeds the time budget (or the memory-bounding cap
// is reached) and reports the last n that fit.
func maxFeasibleN(fanout int, budget time.Duration, capN int) (int, float64) {
	const horizon = 5
	best, bestNs := 0, 0.0
	for n := 1024; n <= capN; n *= 2 {
		cfg, _ := buildSystem(n, fanout, horizon)
		start := time.Now()
		if _, err := scenario.Execute(cfg, scenario.Serial); err != nil {
			break
		}
		perRound := time.Since(start) / horizon
		if perRound > budget {
			break
		}
		best, bestNs = n, float64(perRound.Nanoseconds())
	}
	return best, bestNs
}

// report is the BENCH_sim.json schema.
type report struct {
	Schema string `json:"schema"`
	Go     string `json:"go"`
	// GOMAXPROCS and NumCPU are the real values of the measuring run
	// (after any -maxprocs override); parallel rows mean nothing
	// without them.
	GOMAXPROCS  int          `json:"gomaxprocs"`
	NumCPU      int          `json:"num_cpu"`
	Benchmarks  []benchPoint `json:"benchmarks"`
	MaxFeasible struct {
		Fanout           int     `json:"fanout"`
		BudgetMsPerRound float64 `json:"budget_ms_per_round"`
		N                int     `json:"n"`
		NsPerRound       float64 `json:"ns_per_round"`
	} `json:"max_feasible_n"`
	// Baseline freezes the pre-refactor engine's headline numbers
	// (BenchmarkEngine, n=1000, fanout 8, 20 rounds, allocation-clean
	// harness) so the trajectory keeps its origin.
	Baseline struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
		Note        string  `json:"note"`
	} `json:"baseline_pre_refactor"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "BENCH_sim.json", "output path ('-' for stdout)")
	quick := fs.Bool("quick", false, "tiny sizes (CI smoke)")
	budgetMs := fs.Int("budget", 100, "max-feasible-n time budget, ms per round")
	maxprocs := fs.Int("maxprocs", 0, "override GOMAXPROCS for the measuring run (0 = leave as is)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxprocs > 0 {
		runtime.GOMAXPROCS(*maxprocs)
	}

	type point struct {
		engine            string
		n, fanout, rounds int
	}
	points := []point{
		{"sequential", 256, 8, 20},
		{"sequential", 1000, 8, 20}, // the headline BenchmarkEngine shape
		{"sequential", 4096, 8, 20},
		{"sequential", 256, 64, 20},
		{"parallel", 1000, 8, 20},
		{"parallel", 4096, 8, 20},
		{"reuse", 1000, 8, 20},
		{"reuse", 4096, 8, 20},
		{"reuse-parallel", 4096, 8, 20},
	}
	capN := 1 << 17
	if *quick {
		points = []point{
			{"sequential", 64, 4, 5},
			{"parallel", 64, 4, 5},
			{"reuse", 64, 4, 5},
		}
		capN = 2048
	}

	var rep report
	rep.Schema = "lineartime/bench_sim/v3"
	rep.Go = runtime.Version()
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.NumCPU = runtime.NumCPU()
	for _, p := range points {
		bp, err := measure(p.engine, p.n, p.fanout, p.rounds, 0)
		if err != nil {
			return fmt.Errorf("%s n=%d: %w", p.engine, p.n, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, bp)
	}
	type slicedPt struct {
		engine         string
		n, t, seedsPer int
	}
	slicedPoints := []slicedPt{
		// The headline multi-seed shape: 64 seeds at n=1000 — the
		// acceptance comparison of the bit-sliced engine.
		{"scalar-per-seed", 1000, 16, 64},
		{"sliced", 1000, 16, 64},
	}
	if *quick {
		slicedPoints = []slicedPt{
			{"scalar-per-seed", 64, 8, 16},
			{"sliced", 64, 8, 16},
		}
	}
	for _, p := range slicedPoints {
		bp, err := measureSliced(p.engine, p.n, p.t, p.seedsPer)
		if err != nil {
			return fmt.Errorf("%s n=%d: %w", p.engine, p.n, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, bp)
	}
	fillSpeedups(rep.Benchmarks)
	rep.MaxFeasible.Fanout = 8
	rep.MaxFeasible.BudgetMsPerRound = float64(*budgetMs)
	rep.MaxFeasible.N, rep.MaxFeasible.NsPerRound =
		maxFeasibleN(8, time.Duration(*budgetMs)*time.Millisecond, capN)
	rep.Baseline.Name = "engine/sequential/n=1000/fanout=8"
	rep.Baseline.NsPerOp = 10534134
	rep.Baseline.AllocsPerOp = 140036
	rep.Baseline.BytesPerOp = 12181963
	rep.Baseline.Note = "pre-refactor engine (per-round inbox allocation, sort.Slice ordering); median of 3 at -benchtime 2s"

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}
