// Command loadgen is a closed-loop load generator for linearsimd: a
// fixed set of workers each keeps exactly one request in flight
// against a running daemon, so measured throughput is the server's,
// not the generator's queue depth. It drives two workloads —
//
//	cold-all-miss: every request is a distinct Spec (fresh seed), so
//	every response costs an engine run;
//	repeated-spec: every request is the same Spec, so after the first
//	miss the responses come from the content-addressed cache;
//
// and records req/s, p50/p99 latency and cache hit rate per workload
// into a bench file (BENCH_serve.json when committed), plus the
// repeated-vs-cold throughput ratio — the serving layer's cache
// leverage. A 429 (queue backpressure) is transient by design, so
// workers retry it with capped exponential backoff and jitter; only a
// request that exhausts its retries counts as rejected. Before
// measuring, it probes every daemon endpoint and fails on any
// non-200.
//
// -quick shortens the phases for CI and exits nonzero if the repeated
// workload saw no cache hits.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lineartime/internal/obs"
	"lineartime/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// The 429 retry policy: queue backpressure is transient, so each
// request retries up to maxRetryAttempts times with exponential
// backoff from retryBase, capped at retryCap, jittered to half-to-full
// of the backoff so synchronized workers do not re-collide.
const (
	maxRetryAttempts = 6
	retryBase        = 5 * time.Millisecond
	retryCap         = 200 * time.Millisecond
)

// WorkloadResult is one measured workload of the bench file.
type WorkloadResult struct {
	Name     string `json:"name"`
	Requests int64  `json:"requests"`
	Errors   int64  `json:"errors"`
	// Rejected counts requests that exhausted their 429 retries;
	// Retries counts the individual backoff-retried attempts.
	Rejected    int64   `json:"rejected_429"`
	Retries     int64   `json:"retries_429"`
	ReqPerSec   float64 `json:"req_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	HitRate     float64 `json:"hit_rate"`
	DurationSec float64 `json:"duration_seconds"`
}

// BenchFile is the committed BENCH_serve.json schema.
type BenchFile struct {
	Schema      string           `json:"schema"`
	Go          string           `json:"go"`
	GoMaxProcs  int              `json:"gomaxprocs"`
	NumCPU      int              `json:"num_cpu"`
	Scenario    string           `json:"scenario"`
	N           int              `json:"n"`
	T           int              `json:"t"`
	Concurrency int              `json:"concurrency"`
	Workloads   []WorkloadResult `json:"workloads"`
	// SpeedupRepeatedVsCold is repeated-spec req/s over cold-all-miss
	// req/s: the cache leverage of the serving layer.
	SpeedupRepeatedVsCold float64 `json:"speedup_repeated_vs_cold,omitempty"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:8372", "daemon base URL")
		scen        = fs.String("scenario", "consensus/few-crashes", "registry scenario to request")
		n           = fs.Int("n", 256, "scenario size")
		t           = fs.Int("t", 50, "scenario fault bound")
		seed        = fs.Uint64("seed", 1, "base seed (cold workload increments from it)")
		fault       = fs.String("fault", "", "fault model override, CLI spelling (see linearsim -list)")
		concurrency = fs.Int("concurrency", 8, "closed-loop workers")
		duration    = fs.Duration("duration", 5*time.Second, "measurement window per workload")
		mode        = fs.String("mode", "both", "workloads: cold | repeated | both")
		out         = fs.String("o", "", "output file ('' = stdout)")
		quick       = fs.Bool("quick", false, "CI smoke: 1.5s phases (unless -duration is set) and a required nonzero hit rate")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *quick {
		explicit := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "duration" {
				explicit = true
			}
		})
		if !explicit {
			*duration = 1500 * time.Millisecond
		}
	}

	if *mode != "cold" && *mode != "repeated" && *mode != "both" {
		return fmt.Errorf("unknown mode %q", *mode)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	if err := preflight(client, *addr, *scen, *n, *t, *seed); err != nil {
		return err
	}

	file := BenchFile{
		Schema:      "lineartime/bench_serve/v2",
		Go:          runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Scenario:    *scen,
		N:           *n,
		T:           *t,
		Concurrency: *concurrency,
	}

	base := serve.RunRequest{Scenario: *scen, N: *n, T: *t, Seed: *seed, Fault: *fault}
	var cold, repeated *WorkloadResult
	if *mode == "cold" || *mode == "both" {
		// Cold seeds start at a time-derived offset, away from the base
		// seed: the repeated phase's key is never pre-warmed by the cold
		// phase, and a re-run against a still-warm daemon issues fresh
		// Specs instead of silently measuring cache replays as engine
		// cost. The hit-rate check below backstops both.
		coldBase := base
		coldBase.Seed = uint64(time.Now().UnixNano())
		w := measure(client, *addr, coldBase, *concurrency, *duration, true)
		cold = &w
		file.Workloads = append(file.Workloads, w)
	}
	if *mode == "repeated" || *mode == "both" {
		w := measure(client, *addr, base, *concurrency, *duration, false)
		repeated = &w
		file.Workloads = append(file.Workloads, w)
	}
	if cold != nil && repeated != nil && cold.ReqPerSec > 0 {
		file.SpeedupRepeatedVsCold = repeated.ReqPerSec / cold.ReqPerSec
	}

	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}

	if repeated != nil && repeated.HitRate == 0 {
		return fmt.Errorf("repeated-spec workload saw no cache hits (requests=%d)", repeated.Requests)
	}
	if cold != nil && cold.HitRate > 0 {
		return fmt.Errorf("cold-all-miss workload hit the cache (hit rate %.3f) — its numbers are not engine cost", cold.HitRate)
	}
	for _, w := range file.Workloads {
		if w.Errors > 0 {
			return fmt.Errorf("workload %s had %d errored requests", w.Name, w.Errors)
		}
	}
	return nil
}

// preflight exercises every endpoint once and fails on any non-200:
// the smoke assertion of the CI serve job.
func preflight(client *http.Client, addr, scen string, n, t int, seed uint64) error {
	for _, path := range []string{"/healthz", "/readyz", "/v1/scenarios", "/statsz", "/metrics"} {
		resp, err := client.Get(addr + path)
		if err != nil {
			return fmt.Errorf("GET %s: %w", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	sweep := serve.SweepRequest{Scenario: scen, Seed: seed, Points: []serve.SweepPoint{{N: n, T: t}}}
	body, err := json.Marshal(sweep)
	if err != nil {
		return err
	}
	resp, err := client.Post(addr+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("POST /v1/sweep: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/sweep: status %d", resp.StatusCode)
	}
	return nil
}

// measure runs one closed-loop workload: concurrency workers, each
// issuing the next request the moment the previous response is fully
// read, until the window closes. cold gives every request a fresh seed
// (every Spec distinct); otherwise all requests share the base Spec.
func measure(client *http.Client, addr string, base serve.RunRequest, concurrency int, window time.Duration, cold bool) WorkloadResult {
	name := "repeated-spec"
	if cold {
		name = "cold-all-miss"
	}
	var (
		seedCtr  atomic.Uint64
		requests atomic.Int64
		hits     atomic.Int64
		errs     atomic.Int64
		rejected atomic.Int64
		retries  atomic.Int64
	)
	// Latencies go through the same histogram type and bucket layout the
	// daemon's /metrics uses for its request latencies, so loadgen's
	// p50/p99 and a scrape of the daemon measure on the same grid.
	// Observe is atomic; the workers share one histogram lock-free.
	lat := obs.NewHistogram(obs.LatencyBuckets())
	seedCtr.Store(base.Seed)
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				req := base
				if cold {
					// Distinct seed => distinct Spec.Key => guaranteed miss.
					req.Seed = seedCtr.Add(1)
				}
				body, err := json.Marshal(req)
				if err != nil {
					errs.Add(1)
					continue
				}
				start := time.Now()
				var status int
				var cacheHdr string
				gaveUp := false
				for attempt := 0; ; attempt++ {
					resp, err := client.Post(addr+"/v1/run", "application/json", bytes.NewReader(body))
					if err != nil {
						status = 0
						break
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					status = resp.StatusCode
					cacheHdr = resp.Header.Get("X-Cache")
					if status != http.StatusTooManyRequests {
						break
					}
					// Backpressure is transient: back off and retry the same
					// request instead of failing it, up to the attempt cap
					// (and never past the measurement window).
					if attempt >= maxRetryAttempts || !time.Now().Before(deadline) {
						gaveUp = true
						break
					}
					retries.Add(1)
					backoff := retryBase << attempt
					if backoff > retryCap {
						backoff = retryCap
					}
					time.Sleep(backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1)))
				}
				elapsed := time.Since(start)
				switch {
				case gaveUp:
					rejected.Add(1)
					continue
				case status == 0:
					errs.Add(1)
					continue
				case status != http.StatusOK:
					errs.Add(1)
					continue
				}
				requests.Add(1)
				if cacheHdr == "hit" {
					hits.Add(1)
				}
				lat.Observe(elapsed.Seconds())
			}
		}()
	}
	startAll := time.Now()
	wg.Wait()
	elapsed := time.Since(startAll)
	// The loop start predates startAll by a hair; use the window as the
	// floor so req/s is never inflated.
	if elapsed < window {
		elapsed = window
	}

	res := WorkloadResult{
		Name:        name,
		Requests:    requests.Load(),
		Errors:      errs.Load(),
		Rejected:    rejected.Load(),
		Retries:     retries.Load(),
		DurationSec: elapsed.Seconds(),
	}
	if res.Requests > 0 {
		res.ReqPerSec = float64(res.Requests) / elapsed.Seconds()
		res.HitRate = float64(hits.Load()) / float64(res.Requests)
	}
	res.P50Ms = lat.Quantile(0.50) * 1e3
	res.P99Ms = lat.Quantile(0.99) * 1e3
	return res
}
