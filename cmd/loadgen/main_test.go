package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"lineartime/internal/serve"
)

// TestLoadgenAgainstInProcessDaemon drives the full loadgen flow —
// endpoint preflight, cold and repeated workloads, bench-file output —
// against an in-process serving layer, and checks the repeated
// workload actually exercised the cache.
func TestLoadgenAgainstInProcessDaemon(t *testing.T) {
	s := serve.New(serve.Config{Workers: 2})
	s.SetReady(true)
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	out := filepath.Join(t.TempDir(), "bench_serve.json")
	args := []string{
		"-addr", ts.URL,
		"-quick",
		"-duration", "300ms",
		"-concurrency", "4",
		"-n", "60", "-t", "10",
		"-o", out,
	}
	if err := run(args); err != nil {
		t.Fatalf("loadgen: %v", err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var file BenchFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	if file.Schema != "lineartime/bench_serve/v2" {
		t.Fatalf("schema = %q", file.Schema)
	}
	if len(file.Workloads) != 2 {
		t.Fatalf("workloads = %d, want 2 (cold + repeated)", len(file.Workloads))
	}
	cold, repeated := file.Workloads[0], file.Workloads[1]
	if cold.Name != "cold-all-miss" || repeated.Name != "repeated-spec" {
		t.Fatalf("workload order = %q, %q", cold.Name, repeated.Name)
	}
	if cold.Requests == 0 || repeated.Requests == 0 {
		t.Fatalf("empty workloads: cold=%d repeated=%d", cold.Requests, repeated.Requests)
	}
	if cold.HitRate != 0 {
		t.Fatalf("cold workload hit rate = %v, want 0 (every Spec distinct)", cold.HitRate)
	}
	if repeated.HitRate == 0 {
		t.Fatal("repeated workload saw no cache hits")
	}
	if file.SpeedupRepeatedVsCold <= 1 {
		t.Fatalf("cache leverage = %v, want > 1", file.SpeedupRepeatedVsCold)
	}

	// The server-side counters corroborate the client-side hit rate.
	st := s.Stats()
	if st.Cache.Hits == 0 {
		t.Fatalf("server saw no cache hits: %+v", st.Cache)
	}
}

// TestLoadgenRetries429 puts a flaky 429-shedding proxy in front of
// the daemon: workers must absorb the backpressure with retries — no
// errored requests, no gave-up rejections, a nonzero retry count.
func TestLoadgenRetries429(t *testing.T) {
	s := serve.New(serve.Config{Workers: 2})
	s.SetReady(true)
	h := s.Handler()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Shed every third run request; retries land on the daemon.
		if r.URL.Path == "/v1/run" && calls.Add(1)%3 == 1 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"busy","message":"serve: job queue full"}}`))
			return
		}
		h.ServeHTTP(w, r)
	}))
	defer func() {
		ts.Close()
		s.Close()
	}()

	out := filepath.Join(t.TempDir(), "bench_serve.json")
	args := []string{
		"-addr", ts.URL,
		"-mode", "repeated",
		"-duration", "300ms",
		"-concurrency", "2",
		"-n", "60", "-t", "10",
		"-o", out,
	}
	if err := run(args); err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var file BenchFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	if len(file.Workloads) != 1 {
		t.Fatalf("workloads = %d, want 1", len(file.Workloads))
	}
	w := file.Workloads[0]
	if w.Retries == 0 {
		t.Fatal("shedding proxy produced no retries")
	}
	if w.Errors != 0 || w.Rejected != 0 {
		t.Fatalf("retries did not absorb the backpressure: errors=%d rejected=%d retries=%d", w.Errors, w.Rejected, w.Retries)
	}
}

func TestLoadgenFlagErrors(t *testing.T) {
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-mode", "sideways"}); err == nil {
		t.Fatal("bad mode accepted")
	}
	if err := run([]string{"-addr", "http://127.0.0.1:1", "-duration", "50ms"}); err == nil {
		t.Fatal("unreachable daemon accepted")
	}
}
