package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeAndShutdown boots the daemon on an ephemeral port, checks
// the endpoints answer, and shuts it down with the signal path.
func TestServeAndShutdown(t *testing.T) {
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1"}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	body := `{"scenario":"consensus/few-crashes","n":60,"t":10,"seed":1}`
	resp, err = http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Key string `json:"key"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(env.Key, "k1:") {
		t.Fatalf("run: status=%d key=%q", resp.StatusCode, env.Key)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-badflag"}, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-addr", "256.0.0.1:99999"}, nil); err == nil {
		t.Fatal("unbindable address accepted")
	}
}
