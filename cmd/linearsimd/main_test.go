package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"lineartime/internal/serve"
)

// startDaemon boots the daemon with extra args on an ephemeral port
// and returns its base URL and exit channel.
func startDaemon(t *testing.T, extra ...string) (string, chan error) {
	t.Helper()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "1"}, extra...)
	go func() { errc <- run(args, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, errc
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return "", nil
}

// sigterm signals the daemon (in-process) and waits for a clean exit.
func sigterm(t *testing.T, errc chan error) {
	t.Helper()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}

// TestServeAndShutdown boots the daemon on an ephemeral port, checks
// the endpoints answer, and shuts it down with the signal path.
func TestServeAndShutdown(t *testing.T) {
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1"}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	body := `{"scenario":"consensus/few-crashes","n":60,"t":10,"seed":1}`
	resp, err = http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Key string `json:"key"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(env.Key, "k1:") {
		t.Fatalf("run: status=%d key=%q", resp.StatusCode, env.Key)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}

// TestReadyzSplit pins the liveness/readiness split on the live
// daemon: both answer while serving, and /readyz carries the
// not_ready error shape when the gate is down (exercised in the serve
// package; here we pin the wiring).
func TestReadyzSplit(t *testing.T) {
	base, errc := startDaemon(t)
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d, want 200", ep, resp.StatusCode)
		}
	}
	sigterm(t, errc)
}

// TestCampaignSurvivesRestart is the daemon-level resume path: a
// campaign interrupted by SIGTERM checkpoints into the -state file,
// and the next daemon boot restores and finishes it.
func TestCampaignSurvivesRestart(t *testing.T) {
	state := filepath.Join(t.TempDir(), "jobs.json")
	spec := `{"scenario":"consensus/few-crashes","n":12,"t":2,"seed":1,` +
		`"kinds":["omission","delay"],"budget":{"max_sims":16,"max_waves":2,"top_k":3}}`

	base, errc := startDaemon(t, "-state", state)
	resp, err := http.Post(base+"/v1/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("POST campaign: status=%d %+v", resp.StatusCode, st)
	}

	// Kill the daemon mid-campaign; the graceful path must drain the
	// job to a checkpoint and persist the state file.
	sigterm(t, errc)
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("state file not written: %v", err)
	}

	base2, errc2 := startDaemon(t, "-state", state)
	deadline := time.Now().Add(30 * time.Second)
	var final struct {
		Status   string          `json:"status"`
		Error    string          `json:"error"`
		Frontier json.RawMessage `json:"frontier"`
	}
	for {
		resp, err := http.Get(base2 + "/v1/campaigns/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("restored campaign lookup = %d, want 200", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if final.Status != serve.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restored campaign never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.Status != serve.JobDone {
		t.Fatalf("restored campaign ended %s (%s), want done", final.Status, final.Error)
	}
	if !bytes.Contains(final.Frontier, []byte("lineartime/frontier/v1")) {
		t.Fatalf("restored campaign has no frontier artifact: %s", final.Frontier)
	}
	sigterm(t, errc2)
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-badflag"}, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-addr", "256.0.0.1:99999"}, nil); err == nil {
		t.Fatal("unbindable address accepted")
	}
	if err := run([]string{"-log-format", "xml"}, nil); err == nil {
		t.Fatal("unknown log format accepted")
	}
	if err := run([]string{"-pprof-addr", "256.0.0.1:99999"}, nil); err == nil {
		t.Fatal("unbindable pprof address accepted")
	}
}

// TestMetricsEndpoint scrapes the live daemon after one run and checks
// the exposition carries the request and cache families CI asserts on.
func TestMetricsEndpoint(t *testing.T) {
	base, errc := startDaemon(t)
	body := `{"scenario":"consensus/few-crashes","n":24,"t":4,"seed":3}`
	for i := 0; i < 2; i++ {
		resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d status = %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		`lineartime_requests_total{code="2xx",path="/v1/run"} 2`,
		`lineartime_cache_hits_total 1`,
		`lineartime_runs_total{engine="sequential",outcome="ok"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	sigterm(t, errc)
}

// TestAccessLoggerJSON pins the structured log line: one JSON object
// per request with the fields a log pipeline indexes on.
func TestAccessLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	sink, err := accessLogger("json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	sink(serve.AccessRecord{
		Method:   "POST",
		Path:     "/v1/run",
		Key:      "k1:abc",
		Cache:    "hit",
		Status:   200,
		Duration: 1500 * time.Microsecond,
	})
	var line struct {
		Time       string  `json:"time"`
		Method     string  `json:"method"`
		Path       string  `json:"path"`
		Key        string  `json:"key"`
		Cache      string  `json:"cache"`
		Status     int     `json:"status"`
		DurationMS float64 `json:"duration_ms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line is not JSON: %v (%q)", err, buf.String())
	}
	if line.Method != "POST" || line.Path != "/v1/run" || line.Key != "k1:abc" ||
		line.Cache != "hit" || line.Status != 200 || line.DurationMS != 1.5 {
		t.Fatalf("log line = %+v", line)
	}
	if _, err := time.Parse(time.RFC3339Nano, line.Time); err != nil {
		t.Fatalf("log timestamp %q: %v", line.Time, err)
	}

	if sink, err := accessLogger("text", nil); err != nil || sink != nil {
		t.Fatalf("text format: sink non-nil=%v err=%v, want nil/nil", sink != nil, err)
	}
}

// TestPprofOptIn boots the daemon with -pprof-addr and checks the
// profiling mux answers there — and is absent from the service port.
func TestPprofOptIn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pprofAddr := ln.Addr().String()
	ln.Close()

	base, errc := startDaemon(t, "-pprof-addr", pprofAddr)
	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof endpoint: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status = %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof reachable on the service address")
	}
	sigterm(t, errc)
}
