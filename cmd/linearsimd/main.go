// Command linearsimd serves the scenario registry over HTTP/JSON: a
// long-running daemon with a content-addressed result cache, request
// coalescing, a bounded engine worker pool, and a chaos-campaign job
// store (internal/serve, internal/campaign). Because every run is a
// pure function of its Spec, a cache hit replays the byte-identical
// response of the original run — and a campaign, built from such runs,
// is itself deterministic and resumable.
//
// Endpoints:
//
//	POST   /v1/run             {"scenario","n","t","seed"[,"fault",...]} → {"key","report"}
//	POST   /v1/sweep           {"scenario","seed","points":[{"n","t"},...]} → per-point envelopes
//	GET    /v1/scenarios       the registry
//	POST   /v1/campaigns       campaign spec → async job (202), idempotent by content address
//	GET    /v1/campaigns       job listing
//	GET    /v1/campaigns/{id}  job progress; frontier artifact once done
//	DELETE /v1/campaigns/{id}  cancel a running campaign (checkpointed, resumable)
//	GET    /healthz            liveness: the process serves HTTP
//	GET    /readyz             readiness: 503 during startup and shutdown drain
//	GET    /statsz             cache / coalescer / queue / campaign counters
//
// On SIGTERM the daemon flips not-ready, stops the listener, drains
// running campaigns to checkpoints, and writes them to the -state file;
// the next start restores the file and resumes interrupted campaigns.
//
// Example:
//
//	linearsimd -addr 127.0.0.1:8372 -workers 4 -state /var/lib/linearsimd/jobs.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lineartime/internal/serve"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "linearsimd:", err)
		os.Exit(1)
	}
}

// run parses args, binds the listen address, and serves until a
// termination signal. A non-nil ready channel receives the bound
// address once the server is listening (used by tests to grab an
// ephemeral port).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("linearsimd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8372", "listen address")
		workers    = fs.Int("workers", 0, "engine workers (0 = default)")
		queueDepth = fs.Int("queue", 0, "job queue capacity (0 = 4x workers); a full queue rejects with 429")
		cacheBytes = fs.Int64("cache-bytes", 0, "result cache budget in bytes (0 = 64 MiB)")
		shards     = fs.Int("cache-shards", 0, "result cache shard count (0 = 16)")
		maxJobs    = fs.Int("max-jobs", 0, "campaign job store capacity (0 = 8)")
		statePath  = fs.String("state", "", "campaign state file: restored on start, written on graceful shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := serve.New(serve.Config{
		CacheBytes:  *cacheBytes,
		CacheShards: *shards,
		Workers:     *workers,
		QueueDepth:  *queueDepth,
		MaxJobs:     *maxJobs,
	})
	defer srv.Close()

	// Restore before listening so resumed campaigns are already
	// running (and queryable) when the first request lands.
	if *statePath != "" {
		if err := srv.RestoreJobs(*statePath); err != nil {
			return fmt.Errorf("restore campaign state: %w", err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	log.Printf("linearsimd: serving on http://%s", ln.Addr())
	srv.SetReady(true)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("linearsimd: %v, shutting down", sig)
		// Drain order: stop advertising readiness, stop accepting
		// connections, interrupt running campaigns to checkpoints, then
		// persist them. srv.Close (deferred) waits the drain again —
		// idempotently — before closing the worker pool.
		srv.SetReady(false)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		srv.DrainJobs()
		if *statePath != "" {
			if err := srv.SaveJobs(*statePath); err != nil {
				return fmt.Errorf("save campaign state: %w", err)
			}
			log.Printf("linearsimd: campaign state saved to %s", *statePath)
		}
		return nil
	}
}
