// Command linearsimd serves the scenario registry over HTTP/JSON: a
// long-running daemon with a content-addressed result cache, request
// coalescing, a bounded engine worker pool, and a chaos-campaign job
// store (internal/serve, internal/campaign). Because every run is a
// pure function of its Spec, a cache hit replays the byte-identical
// response of the original run — and a campaign, built from such runs,
// is itself deterministic and resumable.
//
// Endpoints:
//
//	POST   /v1/run             {"scenario","n","t","seed"[,"fault",...]} → {"key","report"}
//	POST   /v1/sweep           {"scenario","seed","points":[{"n","t"},...]} → per-point envelopes
//	GET    /v1/scenarios       the registry
//	POST   /v1/campaigns       campaign spec → async job (202), idempotent by content address
//	GET    /v1/campaigns       job listing
//	GET    /v1/campaigns/{id}  job progress; frontier artifact once done
//	DELETE /v1/campaigns/{id}  cancel a running campaign (checkpointed, resumable)
//	GET    /healthz            liveness: the process serves HTTP (reports drain state)
//	GET    /readyz             readiness: 503 during startup and shutdown drain
//	GET    /statsz             cache / coalescer / queue / campaign counters (JSON)
//	GET    /metrics            the same counters plus engine/request metrics, Prometheus text
//
// Observability: -log-format json emits one structured line per request
// (method, path, run key, cache verdict, status, duration); -pprof-addr
// serves net/http/pprof on a separate, explicitly opted-in listener so
// profiling never shares the public port.
//
// On SIGTERM the daemon flips not-ready, stops the listener, drains
// running campaigns to checkpoints, and writes them to the -state file;
// the next start restores the file and resumes interrupted campaigns.
//
// Example:
//
//	linearsimd -addr 127.0.0.1:8372 -workers 4 -state /var/lib/linearsimd/jobs.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"lineartime/internal/serve"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "linearsimd:", err)
		os.Exit(1)
	}
}

// accessLine is one -log-format json record: enough to reconstruct a
// request's path through the cache without grepping free text.
type accessLine struct {
	Time       string  `json:"time"`
	Method     string  `json:"method"`
	Path       string  `json:"path"`
	Key        string  `json:"key,omitempty"`
	Cache      string  `json:"cache,omitempty"`
	Status     int     `json:"status"`
	DurationMS float64 `json:"duration_ms"`
}

// accessLogger maps -log-format onto a serve.Config.AccessLog sink:
// "text" keeps the default (no per-request logging), "json" emits one
// line per request on w.
func accessLogger(format string, w io.Writer) (func(serve.AccessRecord), error) {
	switch format {
	case "text", "":
		return nil, nil
	case "json":
		var mu sync.Mutex
		enc := json.NewEncoder(w)
		return func(r serve.AccessRecord) {
			// The sink is called from concurrent handlers; the encoder
			// buffers internally and is not safe to share unlocked.
			mu.Lock()
			defer mu.Unlock()
			enc.Encode(accessLine{
				Time:       time.Now().UTC().Format(time.RFC3339Nano),
				Method:     r.Method,
				Path:       r.Path,
				Key:        r.Key,
				Cache:      r.Cache,
				Status:     r.Status,
				DurationMS: float64(r.Duration) / float64(time.Millisecond),
			})
		}, nil
	default:
		return nil, fmt.Errorf(`lineartime: -log-format %q is not "text" or "json"`, format)
	}
}

// run parses args, binds the listen address, and serves until a
// termination signal. A non-nil ready channel receives the bound
// address once the server is listening (used by tests to grab an
// ephemeral port).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("linearsimd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8372", "listen address")
		workers    = fs.Int("workers", 0, "engine workers (0 = default)")
		queueDepth = fs.Int("queue", 0, "job queue capacity (0 = 4x workers); a full queue rejects with 429")
		cacheBytes = fs.Int64("cache-bytes", 0, "result cache budget in bytes (0 = 64 MiB)")
		shards     = fs.Int("cache-shards", 0, "result cache shard count (0 = 16)")
		maxJobs    = fs.Int("max-jobs", 0, "campaign job store capacity (0 = 8)")
		statePath  = fs.String("state", "", "campaign state file: restored on start, written on graceful shutdown")
		logFormat  = fs.String("log-format", "text", "request log format: text or json (one structured line per request)")
		pprofAddr  = fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	accessLog, err := accessLogger(*logFormat, os.Stdout)
	if err != nil {
		return err
	}

	srv := serve.New(serve.Config{
		CacheBytes:  *cacheBytes,
		CacheShards: *shards,
		Workers:     *workers,
		QueueDepth:  *queueDepth,
		MaxJobs:     *maxJobs,
		AccessLog:   accessLog,
	})
	defer srv.Close()

	// pprof is opt-in and on its own listener: the public mux never
	// exposes profiling, and a firewalled pprof port cannot be reached
	// through the service address.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("linearsimd: pprof on http://%s/debug/pprof/", pln.Addr())
		go http.Serve(pln, pmux)
		defer pln.Close()
	}

	// Restore before listening so resumed campaigns are already
	// running (and queryable) when the first request lands.
	if *statePath != "" {
		if err := srv.RestoreJobs(*statePath); err != nil {
			return fmt.Errorf("restore campaign state: %w", err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	log.Printf("linearsimd: serving on http://%s", ln.Addr())
	srv.SetReady(true)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("linearsimd: %v, shutting down", sig)
		// Drain order: mark the drain (readiness gate closes, /healthz
		// and the serve_draining gauge report it), stop accepting
		// connections, interrupt running campaigns to checkpoints, then
		// persist them. srv.Close (deferred) waits the drain again —
		// idempotently — before closing the worker pool.
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		srv.DrainJobs()
		if *statePath != "" {
			if err := srv.SaveJobs(*statePath); err != nil {
				return fmt.Errorf("save campaign state: %w", err)
			}
			log.Printf("linearsimd: campaign state saved to %s", *statePath)
		}
		return nil
	}
}
