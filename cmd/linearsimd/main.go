// Command linearsimd serves the scenario registry over HTTP/JSON: a
// long-running daemon with a content-addressed result cache, request
// coalescing, and a bounded engine worker pool (internal/serve).
// Because every run is a pure function of its Spec, a cache hit
// replays the byte-identical response of the original run.
//
// Endpoints:
//
//	POST /v1/run        {"scenario","n","t","seed"[,"fault",...]} → {"key","report"}
//	POST /v1/sweep      {"scenario","seed","points":[{"n","t"},...]} → per-point envelopes
//	GET  /v1/scenarios  the registry
//	GET  /healthz       liveness
//	GET  /statsz        cache / coalescer / queue counters
//
// Example:
//
//	linearsimd -addr 127.0.0.1:8372 -workers 4 -cache-bytes 67108864
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lineartime/internal/serve"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "linearsimd:", err)
		os.Exit(1)
	}
}

// run parses args, binds the listen address, and serves until a
// termination signal. A non-nil ready channel receives the bound
// address once the server is listening (used by tests to grab an
// ephemeral port).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("linearsimd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8372", "listen address")
		workers    = fs.Int("workers", 0, "engine workers (0 = default)")
		queueDepth = fs.Int("queue", 0, "job queue capacity (0 = 4x workers); a full queue rejects with 429")
		cacheBytes = fs.Int64("cache-bytes", 0, "result cache budget in bytes (0 = 64 MiB)")
		shards     = fs.Int("cache-shards", 0, "result cache shard count (0 = 16)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := serve.New(serve.Config{
		CacheBytes:  *cacheBytes,
		CacheShards: *shards,
		Workers:     *workers,
		QueueDepth:  *queueDepth,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	log.Printf("linearsimd: serving on http://%s", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("linearsimd: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(ctx)
	}
}
