package main

import (
	"bytes"
	"io"
	"testing"
)

func TestSweepQuickSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps skipped in -short mode")
	}
	for _, exp := range []string{"E3", "E5", "E10", "E11"} {
		t.Run(exp, func(t *testing.T) {
			if err := run([]string{"-quick", "-exp", exp}, io.Discard); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSweepUnknownExperimentIsNoop(t *testing.T) {
	if err := run([]string{"-exp", "E99"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestSweepBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-seeds", "0"}, io.Discard); err == nil {
		t.Fatal("-seeds 0 accepted")
	}
}

// TestSweepSingleSeedIsDefault pins -seeds 1 byte-identical to a run
// without the flag: the multi-seed path must not perturb the committed
// single-seed tables.
func TestSweepSingleSeedIsDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps skipped in -short mode")
	}
	var plain, seeded bytes.Buffer
	if err := run([]string{"-quick", "-exp", "E11"}, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "-exp", "E11", "-seeds", "1"}, &seeded); err != nil {
		t.Fatal(err)
	}
	if plain.String() != seeded.String() {
		t.Fatalf("-seeds 1 output diverged from default:\n%s\nvs\n%s", plain.String(), seeded.String())
	}
}

// TestSweepMultiSeed runs the E11 comparison aggregated over 64 seeds —
// the bit-sliced batch path end to end.
func TestSweepMultiSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps skipped in -short mode")
	}
	var plain, seeded bytes.Buffer
	if err := run([]string{"-quick", "-exp", "E11"}, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "-exp", "E11", "-seeds", "64"}, &seeded); err != nil {
		t.Fatal(err)
	}
	if seeded.Len() == 0 || seeded.String() == plain.String() {
		t.Fatalf("-seeds 64 did not aggregate: output identical to single seed")
	}
}
