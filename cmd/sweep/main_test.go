package main

import "testing"

func TestSweepQuickSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps skipped in -short mode")
	}
	for _, exp := range []string{"E3", "E5", "E10", "E11"} {
		t.Run(exp, func(t *testing.T) {
			if err := run([]string{"-quick", "-exp", exp}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSweepUnknownExperimentIsNoop(t *testing.T) {
	if err := run([]string{"-exp", "E99"}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestSizesHelper(t *testing.T) {
	full := sizes(false, 1, 2, 3, 4)
	if len(full) != 4 {
		t.Fatalf("full sizes = %v", full)
	}
	quick := sizes(true, 1, 2, 3, 4)
	if len(quick) != 2 {
		t.Fatalf("quick sizes = %v", quick)
	}
}
