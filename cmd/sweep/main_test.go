package main

import (
	"io"
	"testing"
)

func TestSweepQuickSingleExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps skipped in -short mode")
	}
	for _, exp := range []string{"E3", "E5", "E10", "E11"} {
		t.Run(exp, func(t *testing.T) {
			if err := run([]string{"-quick", "-exp", exp}, io.Discard); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSweepUnknownExperimentIsNoop(t *testing.T) {
	if err := run([]string{"-exp", "E99"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestSweepBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}
