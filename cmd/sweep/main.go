// Command sweep regenerates the experiment series of EXPERIMENTS.md:
// one markdown table per experiment id from the DESIGN.md index
// (E2–E11), covering every performance theorem of the paper.
//
// Usage:
//
//	sweep            # run everything
//	sweep -exp E4    # one experiment
//	sweep -quick     # smaller sizes (CI-friendly)
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"lineartime"
	"lineartime/internal/consensus"
	"lineartime/internal/crash"
	"lineartime/internal/lowerbound"
	"lineartime/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

type experiment struct {
	id    string
	title string
	fn    func(quick bool) error
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	exp := fs.String("exp", "", "experiment id (E2..E11); empty = all")
	quick := fs.Bool("quick", false, "smaller sizes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	experiments := []experiment{
		{"E2", "Theorem 5 — Almost-Everywhere Agreement", sweepAEA},
		{"E3", "Theorem 6 — Spread-Common-Value", sweepSCV},
		{"E4", "Theorem 7 — Few-Crashes-Consensus", sweepFewCrashes},
		{"E5", "Theorem 8 / Corollary 1 — Many-Crashes-Consensus", sweepManyCrashes},
		{"E6", "Theorem 9 — Gossip", sweepGossip},
		{"E7", "Theorem 10 — Checkpointing vs O(tn) baseline", sweepCheckpointing},
		{"E8", "Theorem 11 — AB-Consensus (authenticated Byzantine)", sweepByzantine},
		{"E9", "Theorem 12 — single-port Linear-Consensus", sweepSinglePort},
		{"E10", "Theorem 13 — lower-bound constructions", sweepLowerBound},
		{"E11", "§1 comparison — message crossover vs flooding", sweepCrossover},
	}
	for _, e := range experiments {
		if *exp != "" && e.id != *exp {
			continue
		}
		fmt.Printf("## %s: %s\n\n", e.id, e.title)
		if err := e.fn(*quick); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Println()
	}
	return nil
}

func sizes(quick bool, all ...int) []int {
	if quick && len(all) > 2 {
		return all[:2]
	}
	return all
}

func sweepAEA(quick bool) error {
	fmt.Println("| n | t | deciders | deciders/n | rounds | messages | msgs/n |")
	fmt.Println("|---|---|----------|-----------|--------|----------|--------|")
	for _, n := range sizes(quick, 250, 500, 1000, 2000) {
		t := n / 6
		top, err := consensus.NewTopology(n, t, consensus.TopologyOptions{Seed: 1})
		if err != nil {
			return err
		}
		ms := make([]*consensus.AEA, n)
		ps := make([]sim.Protocol, n)
		for i := 0; i < n; i++ {
			ms[i] = consensus.NewAEA(i, top, i%3 == 0, 0, true)
			ps[i] = ms[i]
		}
		adv := crash.NewTargetLittle(top.L, t, 3)
		res, err := sim.Run(sim.Config{Protocols: ps, Adversary: adv, MaxRounds: ms[0].ScheduleLength() + 4})
		if err != nil {
			return err
		}
		deciders := 0
		for i, m := range ms {
			if res.Crashed.Contains(i) {
				continue
			}
			if _, ok := m.Decided(); ok {
				deciders++
			}
		}
		fmt.Printf("| %d | %d | %d | %.2f | %d | %d | %.1f |\n",
			n, t, deciders, float64(deciders)/float64(n),
			res.Metrics.Rounds, res.Metrics.Messages,
			float64(res.Metrics.Messages)/float64(n))
	}
	fmt.Println("\nClaim: ≥ 3n/5 deciders, O(t) rounds, O(n) messages under little-node-targeted crashes.")
	return nil
}

func sweepSCV(quick bool) error {
	fmt.Println("| n | t | branch | rounds | messages | all decided |")
	fmt.Println("|---|---|--------|--------|----------|-------------|")
	type cfg struct{ n, t int }
	cases := []cfg{{400, 10}, {400, 80}, {1600, 30}, {1600, 320}}
	if quick {
		cases = cases[:2]
	}
	for _, c := range cases {
		branch := "t²≤n"
		if c.t*c.t > c.n {
			branch = "t²>n"
		}
		top, err := consensus.NewTopology(c.n, c.t, consensus.TopologyOptions{Seed: 2})
		if err != nil {
			return err
		}
		ms := make([]*consensus.SCV, c.n)
		ps := make([]sim.Protocol, c.n)
		for i := 0; i < c.n; i++ {
			ms[i] = consensus.NewSCV(i, top, i < 3*c.n/5, true, 0, true)
			ps[i] = ms[i]
		}
		res, err := sim.Run(sim.Config{Protocols: ps, MaxRounds: ms[0].ScheduleLength() + 4})
		if err != nil {
			return err
		}
		all := true
		for _, m := range ms {
			if _, ok := m.Decided(); !ok {
				all = false
			}
		}
		fmt.Printf("| %d | %d | %s | %d | %d | %v |\n",
			c.n, c.t, branch, res.Metrics.Rounds, res.Metrics.Messages, all)
	}
	fmt.Println("\nClaim: O(log t) rounds, O(t log t) messages, every node decides.")
	return nil
}

func sweepFewCrashes(quick bool) error {
	fmt.Println("| n | t | rounds | rounds/t | bits | bits/n |")
	fmt.Println("|---|---|--------|----------|------|--------|")
	for _, n := range sizes(quick, 128, 256, 512, 1024, 2048) {
		t := n / 6
		r, err := lineartime.RunConsensus(n, t, thirds(n),
			lineartime.WithSeed(1), lineartime.WithRandomCrashes(t, 5*t))
		if err != nil {
			return err
		}
		if !r.Agreement || !r.Validity {
			return fmt.Errorf("correctness violated at n=%d", n)
		}
		fmt.Printf("| %d | %d | %d | %.2f | %d | %.1f |\n",
			n, t, r.Metrics.Rounds, float64(r.Metrics.Rounds)/float64(t),
			r.Metrics.Bits, float64(r.Metrics.Bits)/float64(n))
	}
	fmt.Println("\nClaim: O(t + log n) rounds (rounds/t flat) and O(n + t log t) bits.")
	return nil
}

func sweepManyCrashes(quick bool) error {
	fmt.Println("| n | t | α | rounds | n+3(1+lg n) | messages |")
	fmt.Println("|---|---|---|--------|-------------|----------|")
	n := 256
	if quick {
		n = 128
	}
	lg := int(math.Ceil(math.Log2(float64(n))))
	for _, alpha := range []float64{0.2, 0.5, 0.9} {
		t := int(alpha * float64(n))
		if err := manyRow(n, t, lg); err != nil {
			return err
		}
	}
	if err := manyRow(n, n-1, lg); err != nil { // Corollary 1
		return err
	}
	fmt.Println("\nClaim: ≤ n + 3(1+lg n) rounds for any t < n (Corollary 1 row: t = n−1).")
	return nil
}

func manyRow(n, t, lg int) error {
	r, err := lineartime.RunConsensus(n, t, thirds(n),
		lineartime.WithSeed(3),
		lineartime.WithAlgorithm(lineartime.ManyCrashes),
		lineartime.WithRandomCrashes(t, n))
	if err != nil {
		return err
	}
	if !r.Agreement || !r.Validity {
		return fmt.Errorf("correctness violated at t=%d", t)
	}
	fmt.Printf("| %d | %d | %.2f | %d | %d | %d |\n",
		n, t, float64(t)/float64(n), r.Metrics.Rounds, n+3*(1+lg), r.Metrics.Messages)
	return nil
}

func sweepGossip(quick bool) error {
	fmt.Println("| n | t | rounds | lg n · lg t | messages | msgs/n |")
	fmt.Println("|---|---|--------|--------------|----------|--------|")
	for _, n := range sizes(quick, 128, 256, 512, 1024, 2048) {
		t := n / 6
		rumors := make([]uint64, n)
		for i := range rumors {
			rumors[i] = uint64(i)
		}
		r, err := lineartime.RunGossip(n, t, rumors, false,
			lineartime.WithSeed(1), lineartime.WithRandomCrashes(t, 60))
		if err != nil {
			return err
		}
		if !r.Complete {
			return fmt.Errorf("gossip incomplete at n=%d", n)
		}
		lglg := math.Log2(float64(n)) * math.Log2(float64(t))
		fmt.Printf("| %d | %d | %d | %.0f | %d | %.1f |\n",
			n, t, r.Metrics.Rounds, lglg, r.Metrics.Messages,
			float64(r.Metrics.Messages)/float64(n))
	}
	fmt.Println("\nClaim: O(log n · log t) rounds and O(n + t log n log t) messages.")
	return nil
}

func sweepCheckpointing(quick bool) error {
	fmt.Println("| n | t | algo rounds | algo msgs | baseline rounds | baseline msgs | ratio |")
	fmt.Println("|---|---|-------------|-----------|-----------------|---------------|-------|")
	for _, n := range sizes(quick, 128, 256, 512, 1024) {
		t := n / 6
		algo, err := lineartime.RunCheckpointing(n, t, false,
			lineartime.WithSeed(1), lineartime.WithRandomCrashes(t, 60))
		if err != nil {
			return err
		}
		base, err := lineartime.RunCheckpointing(n, t, true,
			lineartime.WithSeed(1), lineartime.WithRandomCrashes(t, 60))
		if err != nil {
			return err
		}
		if !algo.Agreement || !base.Agreement {
			return fmt.Errorf("agreement violated at n=%d", n)
		}
		fmt.Printf("| %d | %d | %d | %d | %d | %d | %.2f |\n",
			n, t, algo.Metrics.Rounds, algo.Metrics.Messages,
			base.Metrics.Rounds, base.Metrics.Messages,
			float64(base.Metrics.Messages)/float64(algo.Metrics.Messages))
	}
	fmt.Println("\nClaim: the §6 algorithm's messages beat the direct Θ(t·n²) exchange by a factor growing with n.")
	return nil
}

func sweepByzantine(quick bool) error {
	fmt.Println("| n | t=√n/2 | strategy | rounds | messages | t²+n | agreement |")
	fmt.Println("|---|--------|----------|--------|----------|------|-----------|")
	for _, n := range sizes(quick, 100, 400, 900, 1600) {
		t := int(math.Sqrt(float64(n)) / 2)
		if t < 1 {
			t = 1
		}
		inputs := make([]uint64, n)
		for i := range inputs {
			inputs[i] = uint64(i)
		}
		for _, strat := range []struct {
			name string
			s    lineartime.ByzantineStrategy
		}{{"silence", lineartime.Silence}, {"equivocate", lineartime.Equivocate}, {"spam", lineartime.Spam}} {
			corrupted := make([]int, 0, t)
			for i := 0; i < t; i++ {
				corrupted = append(corrupted, i)
			}
			r, err := lineartime.RunByzantineConsensus(n, t, inputs, false,
				lineartime.WithSeed(1),
				lineartime.WithByzantine(strat.s, corrupted...))
			if err != nil {
				return err
			}
			fmt.Printf("| %d | %d | %s | %d | %d | %d | %v |\n",
				n, t, strat.name, r.Metrics.Rounds, r.Metrics.Messages, t*t+n, r.Agreement)
		}
	}
	fmt.Println("\nClaim: O(t) rounds, O(t²+n) non-faulty messages, agreement under every strategy.")
	return nil
}

func sweepSinglePort(quick bool) error {
	fmt.Println("| n | t | rounds | rounds/(t+lg n) | bits | bits/n |")
	fmt.Println("|---|---|--------|------------------|------|--------|")
	for _, n := range sizes(quick, 128, 256, 512, 1024) {
		t := n / 6
		r, err := lineartime.RunConsensus(n, t, thirds(n),
			lineartime.WithSeed(1),
			lineartime.WithAlgorithm(lineartime.SinglePortLinear),
			lineartime.WithRandomCrashes(t, 3*t))
		if err != nil {
			return err
		}
		if !r.Agreement || !r.Validity {
			return fmt.Errorf("correctness violated at n=%d", n)
		}
		denom := float64(t) + math.Log2(float64(n))
		fmt.Printf("| %d | %d | %d | %.1f | %d | %.1f |\n",
			n, t, r.Metrics.Rounds, float64(r.Metrics.Rounds)/denom,
			r.Metrics.Bits, float64(r.Metrics.Bits)/float64(n))
	}
	fmt.Println("\nClaim: Θ(t + log n) rounds (the ratio column is the compilation constant) and O(n + t log n) bits.")
	return nil
}

func sweepLowerBound(quick bool) error {
	fmt.Println("Divergence (Ω(log n) argument): diverged-node counts per single-port round vs the 3^i bound")
	fmt.Println()
	fmt.Println("| n | series (per round) | 3^i violated | full divergence at round | log₃(n) |")
	fmt.Println("|---|--------------------|--------------|--------------------------|---------|")
	for _, n := range sizes(quick, 81, 243, 729) {
		series, err := lowerbound.DivergenceSeries(n, 24)
		if err != nil {
			return err
		}
		head := series
		if len(head) > 12 {
			head = head[:12]
		}
		fmt.Printf("| %d | %v | %v | %d | %.1f |\n",
			n, head, lowerbound.CheckDivergenceInvariant(series) >= 0,
			lowerbound.RoundsToFullDivergence(series, n),
			math.Log(float64(n))/math.Log(3))
	}
	fmt.Println()
	fmt.Println("Isolation (Ω(t) argument): first round the victim hears anything, crash budget t")
	fmt.Println()
	fmt.Println("| n | t | first contact round | t/2 bound |")
	fmt.Println("|---|---|---------------------|-----------|")
	for _, t := range sizes(quick, 8, 16, 32, 64) {
		first, err := lowerbound.FirstContactRound(128, t, 5, 400)
		if err != nil {
			return err
		}
		fmt.Printf("| 128 | %d | %d | %d |\n", t, first, t/2)
	}
	fmt.Println("\nClaim: divergence ≤ 3^i per round (so Ω(log n) rounds) and isolation ≥ t/2 rounds (so Ω(t)).")
	return nil
}

func sweepCrossover(quick bool) error {
	fmt.Println("| n | t | few-crashes bits | flooding bits | coordinator bits | flood/algo | coord/algo |")
	fmt.Println("|---|---|------------------|---------------|------------------|------------|------------|")
	for _, n := range sizes(quick, 64, 128, 256, 512, 1024) {
		t := n / 6
		algo, err := lineartime.RunConsensus(n, t, thirds(n), lineartime.WithSeed(1))
		if err != nil {
			return err
		}
		flood, err := lineartime.RunConsensus(n, t, thirds(n),
			lineartime.WithSeed(1), lineartime.WithAlgorithm(lineartime.FloodingBaseline))
		if err != nil {
			return err
		}
		coord, err := lineartime.RunConsensus(n, t, thirds(n),
			lineartime.WithSeed(1), lineartime.WithAlgorithm(lineartime.CoordinatorBaseline))
		if err != nil {
			return err
		}
		fmt.Printf("| %d | %d | %d | %d | %d | %.2f | %.2f |\n",
			n, t, algo.Metrics.Bits, flood.Metrics.Bits, coord.Metrics.Bits,
			float64(flood.Metrics.Bits)/float64(algo.Metrics.Bits),
			float64(coord.Metrics.Bits)/float64(algo.Metrics.Bits))
	}
	fmt.Println("\nClaim: the baselines' Θ(n²) and Θ(t·n) bits diverge from the algorithm's O(n + t log t); both ratios grow with n.")
	return nil
}

func thirds(n int) []bool {
	in := make([]bool, n)
	for i := range in {
		in[i] = i%3 == 0
	}
	return in
}
