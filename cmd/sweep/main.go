// Command sweep regenerates the experiment series of EXPERIMENTS.md:
// one markdown table per experiment id from the DESIGN.md index
// (E2–E11), covering every performance theorem of the paper.
//
// Sweep points within an experiment are independent runs, so they are
// fanned across a worker pool (-parallel, default GOMAXPROCS) and the
// rows printed in order once all have completed.
//
// Usage:
//
//	sweep             # run everything
//	sweep -exp E4     # one experiment
//	sweep -quick      # smaller sizes (CI-friendly)
//	sweep -parallel 4 # cap the sweep-point workers
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"

	"lineartime"
	"lineartime/internal/consensus"
	"lineartime/internal/crash"
	"lineartime/internal/lowerbound"
	"lineartime/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

type experiment struct {
	id    string
	title string
	fn    func(quick bool) error
}

// parallelism is the sweep-point worker count, set by -parallel.
var parallelism = runtime.GOMAXPROCS(0)

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	exp := fs.String("exp", "", "experiment id (E2..E11); empty = all")
	quick := fs.Bool("quick", false, "smaller sizes")
	par := fs.Int("parallel", runtime.GOMAXPROCS(0), "sweep-point workers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *par > 0 {
		parallelism = *par
	}
	experiments := []experiment{
		{"E2", "Theorem 5 — Almost-Everywhere Agreement", sweepAEA},
		{"E3", "Theorem 6 — Spread-Common-Value", sweepSCV},
		{"E4", "Theorem 7 — Few-Crashes-Consensus", sweepFewCrashes},
		{"E5", "Theorem 8 / Corollary 1 — Many-Crashes-Consensus", sweepManyCrashes},
		{"E6", "Theorem 9 — Gossip", sweepGossip},
		{"E7", "Theorem 10 — Checkpointing vs O(tn) baseline", sweepCheckpointing},
		{"E8", "Theorem 11 — AB-Consensus (authenticated Byzantine)", sweepByzantine},
		{"E9", "Theorem 12 — single-port Linear-Consensus", sweepSinglePort},
		{"E10", "Theorem 13 — lower-bound constructions", sweepLowerBound},
		{"E11", "§1 comparison — message crossover vs flooding", sweepCrossover},
	}
	for _, e := range experiments {
		if *exp != "" && e.id != *exp {
			continue
		}
		fmt.Printf("## %s: %s\n\n", e.id, e.title)
		if err := e.fn(*quick); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Println()
	}
	return nil
}

// tableRows fans count independent sweep points across the worker pool
// and returns their formatted rows in point order. The first error (by
// point index, for determinism) wins.
func tableRows(count int, fn func(i int) (string, error)) ([]string, error) {
	rows := make([]string, count)
	errs := make([]error, count)
	workers := parallelism
	if workers > count {
		workers = count
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				rows[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < count; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func printTable(header, sep string, rows []string, footer string) {
	fmt.Println(header)
	fmt.Println(sep)
	for _, row := range rows {
		fmt.Println(row)
	}
	if footer != "" {
		fmt.Println("\n" + footer)
	}
}

func sizes(quick bool, all ...int) []int {
	if quick && len(all) > 2 {
		return all[:2]
	}
	return all
}

func sweepAEA(quick bool) error {
	ns := sizes(quick, 250, 500, 1000, 2000)
	rows, err := tableRows(len(ns), func(i int) (string, error) {
		n := ns[i]
		t := n / 6
		top, err := consensus.NewTopology(n, t, consensus.TopologyOptions{Seed: 1})
		if err != nil {
			return "", err
		}
		ms := make([]*consensus.AEA, n)
		ps := make([]sim.Protocol, n)
		for j := 0; j < n; j++ {
			ms[j] = consensus.NewAEA(j, top, j%3 == 0, 0, true)
			ps[j] = ms[j]
		}
		adv := crash.NewTargetLittle(top.L, t, 3)
		res, err := sim.Run(sim.Config{Protocols: ps, Adversary: adv, MaxRounds: ms[0].ScheduleLength() + 4})
		if err != nil {
			return "", err
		}
		deciders := 0
		for j, m := range ms {
			if res.Crashed.Contains(j) {
				continue
			}
			if _, ok := m.Decided(); ok {
				deciders++
			}
		}
		return fmt.Sprintf("| %d | %d | %d | %.2f | %d | %d | %.1f |",
			n, t, deciders, float64(deciders)/float64(n),
			res.Metrics.Rounds, res.Metrics.Messages,
			float64(res.Metrics.Messages)/float64(n)), nil
	})
	if err != nil {
		return err
	}
	printTable("| n | t | deciders | deciders/n | rounds | messages | msgs/n |",
		"|---|---|----------|-----------|--------|----------|--------|", rows,
		"Claim: ≥ 3n/5 deciders, O(t) rounds, O(n) messages under little-node-targeted crashes.")
	return nil
}

func sweepSCV(quick bool) error {
	type cfg struct{ n, t int }
	cases := []cfg{{400, 10}, {400, 80}, {1600, 30}, {1600, 320}}
	if quick {
		cases = cases[:2]
	}
	rows, err := tableRows(len(cases), func(i int) (string, error) {
		c := cases[i]
		branch := "t²≤n"
		if c.t*c.t > c.n {
			branch = "t²>n"
		}
		top, err := consensus.NewTopology(c.n, c.t, consensus.TopologyOptions{Seed: 2})
		if err != nil {
			return "", err
		}
		ms := make([]*consensus.SCV, c.n)
		ps := make([]sim.Protocol, c.n)
		for j := 0; j < c.n; j++ {
			ms[j] = consensus.NewSCV(j, top, j < 3*c.n/5, true, 0, true)
			ps[j] = ms[j]
		}
		res, err := sim.Run(sim.Config{Protocols: ps, MaxRounds: ms[0].ScheduleLength() + 4})
		if err != nil {
			return "", err
		}
		all := true
		for _, m := range ms {
			if _, ok := m.Decided(); !ok {
				all = false
			}
		}
		return fmt.Sprintf("| %d | %d | %s | %d | %d | %v |",
			c.n, c.t, branch, res.Metrics.Rounds, res.Metrics.Messages, all), nil
	})
	if err != nil {
		return err
	}
	printTable("| n | t | branch | rounds | messages | all decided |",
		"|---|---|--------|--------|----------|-------------|", rows,
		"Claim: O(log t) rounds, O(t log t) messages, every node decides.")
	return nil
}

func sweepFewCrashes(quick bool) error {
	ns := sizes(quick, 128, 256, 512, 1024, 2048)
	rows, err := tableRows(len(ns), func(i int) (string, error) {
		n := ns[i]
		t := n / 6
		r, err := lineartime.RunConsensus(n, t, thirds(n),
			lineartime.WithSeed(1), lineartime.WithRandomCrashes(t, 5*t))
		if err != nil {
			return "", err
		}
		if !r.Agreement || !r.Validity {
			return "", fmt.Errorf("correctness violated at n=%d", n)
		}
		return fmt.Sprintf("| %d | %d | %d | %.2f | %d | %.1f |",
			n, t, r.Metrics.Rounds, float64(r.Metrics.Rounds)/float64(t),
			r.Metrics.Bits, float64(r.Metrics.Bits)/float64(n)), nil
	})
	if err != nil {
		return err
	}
	printTable("| n | t | rounds | rounds/t | bits | bits/n |",
		"|---|---|--------|----------|------|--------|", rows,
		"Claim: O(t + log n) rounds (rounds/t flat) and O(n + t log t) bits.")
	return nil
}

func sweepManyCrashes(quick bool) error {
	n := 256
	if quick {
		n = 128
	}
	lg := int(math.Ceil(math.Log2(float64(n))))
	ts := []int{n / 5, n / 2, 9 * n / 10, n - 1} // α = .2, .5, .9, Corollary 1
	rows, err := tableRows(len(ts), func(i int) (string, error) {
		t := ts[i]
		r, err := lineartime.RunConsensus(n, t, thirds(n),
			lineartime.WithSeed(3),
			lineartime.WithAlgorithm(lineartime.ManyCrashes),
			lineartime.WithRandomCrashes(t, n))
		if err != nil {
			return "", err
		}
		if !r.Agreement || !r.Validity {
			return "", fmt.Errorf("correctness violated at t=%d", t)
		}
		return fmt.Sprintf("| %d | %d | %.2f | %d | %d | %d |",
			n, t, float64(t)/float64(n), r.Metrics.Rounds, n+3*(1+lg), r.Metrics.Messages), nil
	})
	if err != nil {
		return err
	}
	printTable("| n | t | α | rounds | n+3(1+lg n) | messages |",
		"|---|---|---|--------|-------------|----------|", rows,
		"Claim: ≤ n + 3(1+lg n) rounds for any t < n (Corollary 1 row: t = n−1).")
	return nil
}

func sweepGossip(quick bool) error {
	ns := sizes(quick, 128, 256, 512, 1024, 2048)
	rows, err := tableRows(len(ns), func(i int) (string, error) {
		n := ns[i]
		t := n / 6
		rumors := make([]uint64, n)
		for j := range rumors {
			rumors[j] = uint64(j)
		}
		r, err := lineartime.RunGossip(n, t, rumors, false,
			lineartime.WithSeed(1), lineartime.WithRandomCrashes(t, 60))
		if err != nil {
			return "", err
		}
		if !r.Complete {
			return "", fmt.Errorf("gossip incomplete at n=%d", n)
		}
		lglg := math.Log2(float64(n)) * math.Log2(float64(t))
		return fmt.Sprintf("| %d | %d | %d | %.0f | %d | %.1f |",
			n, t, r.Metrics.Rounds, lglg, r.Metrics.Messages,
			float64(r.Metrics.Messages)/float64(n)), nil
	})
	if err != nil {
		return err
	}
	printTable("| n | t | rounds | lg n · lg t | messages | msgs/n |",
		"|---|---|--------|--------------|----------|--------|", rows,
		"Claim: O(log n · log t) rounds and O(n + t log n log t) messages.")
	return nil
}

func sweepCheckpointing(quick bool) error {
	ns := sizes(quick, 128, 256, 512, 1024)
	rows, err := tableRows(len(ns), func(i int) (string, error) {
		n := ns[i]
		t := n / 6
		algo, err := lineartime.RunCheckpointing(n, t, false,
			lineartime.WithSeed(1), lineartime.WithRandomCrashes(t, 60))
		if err != nil {
			return "", err
		}
		base, err := lineartime.RunCheckpointing(n, t, true,
			lineartime.WithSeed(1), lineartime.WithRandomCrashes(t, 60))
		if err != nil {
			return "", err
		}
		if !algo.Agreement || !base.Agreement {
			return "", fmt.Errorf("agreement violated at n=%d", n)
		}
		return fmt.Sprintf("| %d | %d | %d | %d | %d | %d | %.2f |",
			n, t, algo.Metrics.Rounds, algo.Metrics.Messages,
			base.Metrics.Rounds, base.Metrics.Messages,
			float64(base.Metrics.Messages)/float64(algo.Metrics.Messages)), nil
	})
	if err != nil {
		return err
	}
	printTable("| n | t | algo rounds | algo msgs | baseline rounds | baseline msgs | ratio |",
		"|---|---|-------------|-----------|-----------------|---------------|-------|", rows,
		"Claim: the §6 algorithm's messages beat the direct Θ(t·n²) exchange by a factor growing with n.")
	return nil
}

func sweepByzantine(quick bool) error {
	type point struct {
		n    int
		name string
		s    lineartime.ByzantineStrategy
	}
	strategies := []struct {
		name string
		s    lineartime.ByzantineStrategy
	}{{"silence", lineartime.Silence}, {"equivocate", lineartime.Equivocate}, {"spam", lineartime.Spam}}
	var points []point
	for _, n := range sizes(quick, 100, 400, 900, 1600) {
		for _, strat := range strategies {
			points = append(points, point{n: n, name: strat.name, s: strat.s})
		}
	}
	rows, err := tableRows(len(points), func(i int) (string, error) {
		p := points[i]
		t := int(math.Sqrt(float64(p.n)) / 2)
		if t < 1 {
			t = 1
		}
		inputs := make([]uint64, p.n)
		for j := range inputs {
			inputs[j] = uint64(j)
		}
		corrupted := make([]int, 0, t)
		for j := 0; j < t; j++ {
			corrupted = append(corrupted, j)
		}
		r, err := lineartime.RunByzantineConsensus(p.n, t, inputs, false,
			lineartime.WithSeed(1),
			lineartime.WithByzantine(p.s, corrupted...))
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("| %d | %d | %s | %d | %d | %d | %v |",
			p.n, t, p.name, r.Metrics.Rounds, r.Metrics.Messages, t*t+p.n, r.Agreement), nil
	})
	if err != nil {
		return err
	}
	printTable("| n | t=√n/2 | strategy | rounds | messages | t²+n | agreement |",
		"|---|--------|----------|--------|----------|------|-----------|", rows,
		"Claim: O(t) rounds, O(t²+n) non-faulty messages, agreement under every strategy.")
	return nil
}

func sweepSinglePort(quick bool) error {
	ns := sizes(quick, 128, 256, 512, 1024)
	rows, err := tableRows(len(ns), func(i int) (string, error) {
		n := ns[i]
		t := n / 6
		r, err := lineartime.RunConsensus(n, t, thirds(n),
			lineartime.WithSeed(1),
			lineartime.WithAlgorithm(lineartime.SinglePortLinear),
			lineartime.WithRandomCrashes(t, 3*t))
		if err != nil {
			return "", err
		}
		if !r.Agreement || !r.Validity {
			return "", fmt.Errorf("correctness violated at n=%d", n)
		}
		denom := float64(t) + math.Log2(float64(n))
		return fmt.Sprintf("| %d | %d | %d | %.1f | %d | %.1f |",
			n, t, r.Metrics.Rounds, float64(r.Metrics.Rounds)/denom,
			r.Metrics.Bits, float64(r.Metrics.Bits)/float64(n)), nil
	})
	if err != nil {
		return err
	}
	printTable("| n | t | rounds | rounds/(t+lg n) | bits | bits/n |",
		"|---|---|--------|------------------|------|--------|", rows,
		"Claim: Θ(t + log n) rounds (the ratio column is the compilation constant) and O(n + t log n) bits.")
	return nil
}

func sweepLowerBound(quick bool) error {
	fmt.Println("Divergence (Ω(log n) argument): diverged-node counts per single-port round vs the 3^i bound")
	fmt.Println()
	ns := sizes(quick, 81, 243, 729)
	rows, err := tableRows(len(ns), func(i int) (string, error) {
		n := ns[i]
		series, err := lowerbound.DivergenceSeries(n, 24)
		if err != nil {
			return "", err
		}
		head := series
		if len(head) > 12 {
			head = head[:12]
		}
		return fmt.Sprintf("| %d | %v | %v | %d | %.1f |",
			n, head, lowerbound.CheckDivergenceInvariant(series) >= 0,
			lowerbound.RoundsToFullDivergence(series, n),
			math.Log(float64(n))/math.Log(3)), nil
	})
	if err != nil {
		return err
	}
	printTable("| n | series (per round) | 3^i violated | full divergence at round | log₃(n) |",
		"|---|--------------------|--------------|--------------------------|---------|", rows, "")
	fmt.Println()
	fmt.Println("Isolation (Ω(t) argument): first round the victim hears anything, crash budget t")
	fmt.Println()
	ts := sizes(quick, 8, 16, 32, 64)
	rows, err = tableRows(len(ts), func(i int) (string, error) {
		t := ts[i]
		first, err := lowerbound.FirstContactRound(128, t, 5, 400)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("| 128 | %d | %d | %d |", t, first, t/2), nil
	})
	if err != nil {
		return err
	}
	printTable("| n | t | first contact round | t/2 bound |",
		"|---|---|---------------------|-----------|", rows,
		"Claim: divergence ≤ 3^i per round (so Ω(log n) rounds) and isolation ≥ t/2 rounds (so Ω(t)).")
	return nil
}

func sweepCrossover(quick bool) error {
	ns := sizes(quick, 64, 128, 256, 512, 1024)
	rows, err := tableRows(len(ns), func(i int) (string, error) {
		n := ns[i]
		t := n / 6
		algo, err := lineartime.RunConsensus(n, t, thirds(n), lineartime.WithSeed(1))
		if err != nil {
			return "", err
		}
		flood, err := lineartime.RunConsensus(n, t, thirds(n),
			lineartime.WithSeed(1), lineartime.WithAlgorithm(lineartime.FloodingBaseline))
		if err != nil {
			return "", err
		}
		coord, err := lineartime.RunConsensus(n, t, thirds(n),
			lineartime.WithSeed(1), lineartime.WithAlgorithm(lineartime.CoordinatorBaseline))
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("| %d | %d | %d | %d | %d | %.2f | %.2f |",
			n, t, algo.Metrics.Bits, flood.Metrics.Bits, coord.Metrics.Bits,
			float64(flood.Metrics.Bits)/float64(algo.Metrics.Bits),
			float64(coord.Metrics.Bits)/float64(algo.Metrics.Bits)), nil
	})
	if err != nil {
		return err
	}
	printTable("| n | t | few-crashes bits | flooding bits | coordinator bits | flood/algo | coord/algo |",
		"|---|---|------------------|---------------|------------------|------------|------------|", rows,
		"Claim: the baselines' Θ(n²) and Θ(t·n) bits diverge from the algorithm's O(n + t log t); both ratios grow with n.")
	return nil
}

func thirds(n int) []bool {
	in := make([]bool, n)
	for i := range in {
		in[i] = i%3 == 0
	}
	return in
}
