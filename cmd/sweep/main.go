// Command sweep regenerates the experiment series of EXPERIMENTS.md:
// one markdown table per experiment id from the DESIGN.md index
// (E2–E11), covering every performance theorem of the paper. The
// experiments themselves are declared over the scenario registry in
// internal/scenario/experiments; this command is the enumeration loop.
//
// Sweep points within an experiment are independent runs, so they are
// fanned across a worker pool (-parallel, default GOMAXPROCS) and the
// rows printed in order once all have completed. Each worker's runs
// dispatch through scenario.Execute, whose arena pool (sim.Runtime)
// hands every consecutive point a warm engine — steady-state sweep
// points pay no per-run state rebuild.
//
// Usage:
//
//	sweep             # run everything
//	sweep -exp E4     # one experiment
//	sweep -quick      # smaller sizes (CI-friendly)
//	sweep -parallel 4 # cap the sweep-point workers
//	sweep -seeds 64   # aggregate multi-seed points over 64 seeds
//	                  # (batched through the bit-sliced engine)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"lineartime/internal/scenario"
	"lineartime/internal/scenario/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// parallelism is the sweep-point worker count, set by -parallel.
var parallelism = runtime.GOMAXPROCS(0)

// seeds is the per-point seed count, set by -seeds. At 1 every point
// runs its committed single-seed path, so the golden output is
// byte-identical to a run without the flag; above 1, points with a
// multi-seed path (Point.RunN) aggregate over seeds 1..N, batched
// through the bit-sliced engine where the scenario allows.
var seeds = 1

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	exp := fs.String("exp", "", "experiment id (E2..E11); empty = all")
	quick := fs.Bool("quick", false, "smaller sizes")
	par := fs.Int("parallel", runtime.GOMAXPROCS(0), "sweep-point workers")
	sd := fs.Int("seeds", 1, "seeds per point (points without a multi-seed path keep their committed seed)")
	implicit := fs.Bool("implicit", false, "run implicit-capable scenarios over generated shift topologies instead of materialized random-regular ones (O(n·d) less resident memory)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *par > 0 {
		parallelism = *par
	}
	if *sd < 1 {
		return fmt.Errorf("-seeds %d must be at least 1", *sd)
	}
	seeds = *sd
	// Flip the registry's implicit default before any worker builds a
	// spec: every implicit-capable row then runs over the seeded shift
	// family with overlays regenerated on the fly instead of stored.
	// An implicit run is pinned byte-identical to a materialized run
	// of the same shift topology (internal/scenario's parity suite),
	// but the shift family is not the committed random-regular one, so
	// rows that switch report their own — still deterministic —
	// values.
	if *implicit {
		scenario.SetImplicitDefault(true)
		defer scenario.SetImplicitDefault(false)
	}
	for _, e := range experiments.All() {
		if *exp != "" && e.ID != *exp {
			continue
		}
		fmt.Fprintf(w, "## %s: %s\n\n", e.ID, e.Title)
		if err := renderExperiment(w, e, *quick); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// renderExperiment prints the experiment's sections, fanning each
// section's points across the worker pool.
func renderExperiment(w io.Writer, e experiments.Experiment, quick bool) error {
	for i, sec := range e.Sections(quick) {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if sec.Preamble != "" {
			fmt.Fprintln(w, sec.Preamble)
			fmt.Fprintln(w)
		}
		rows, err := tableRows(sec.Points)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, sec.Header)
		fmt.Fprintln(w, sec.Sep)
		for _, row := range rows {
			fmt.Fprintln(w, row)
		}
		if sec.Footer != "" {
			fmt.Fprintln(w, "\n"+sec.Footer)
		}
	}
	return nil
}

// tableRows fans the independent sweep points across the worker pool
// and returns their formatted rows in point order. The first error (by
// point index, for determinism) wins.
func tableRows(points []experiments.Point) ([]string, error) {
	count := len(points)
	rows := make([]string, count)
	errs := make([]error, count)
	workers := parallelism
	if workers > count {
		workers = count
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if seeds > 1 && points[i].RunN != nil {
					rows[i], errs[i] = points[i].RunN(seeds)
				} else {
					rows[i], errs[i] = points[i].Run()
				}
			}
		}()
	}
	for i := 0; i < count; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
