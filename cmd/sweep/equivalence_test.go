package main

import (
	"bytes"
	"os"
	"testing"
)

// TestSweepOutputMatchesPreRefactorGolden pins the registry-driven
// sweep to the committed pre-refactor serial output: the refactor onto
// internal/scenario/experiments must be byte-identical for the
// committed sweep configuration (-quick, all experiments).
//
// Regenerate intentionally (only when an experiment deliberately
// changes) with:
//
//	go run ./cmd/sweep -quick -parallel 1 > testdata/sweep_quick_golden.txt
//
// from the repository root.
func TestSweepOutputMatchesPreRefactorGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick sweep skipped in -short mode")
	}
	golden, err := os.ReadFile("../../testdata/sweep_quick_golden.txt")
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), golden) {
		t.Fatalf("sweep -quick output diverged from pre-refactor golden\n--- got ---\n%s\n--- want ---\n%s",
			firstDiff(buf.Bytes(), golden), firstDiff(golden, buf.Bytes()))
	}
}

// firstDiff returns a window of a around the first byte where a and b
// differ, to keep failure output readable.
func firstDiff(a, b []byte) []byte {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - 200
	if lo < 0 {
		lo = 0
	}
	hi := i + 200
	if hi > len(a) {
		hi = len(a)
	}
	return a[lo:hi]
}
