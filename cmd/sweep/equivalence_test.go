package main

import (
	"bytes"
	"os"
	"testing"
)

// TestSweepOutputMatchesPreRefactorGolden pins the registry-driven
// sweep to the committed pre-refactor serial output: the refactor onto
// internal/scenario/experiments must be byte-identical for the
// committed sweep configuration (-quick, all experiments).
//
// Regenerate intentionally (only when an experiment deliberately
// changes) with:
//
//	go run ./cmd/sweep -quick -parallel 1 > testdata/sweep_quick_golden.txt
//
// from the repository root.
func TestSweepOutputMatchesPreRefactorGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick sweep skipped in -short mode")
	}
	golden, err := os.ReadFile("../../testdata/sweep_quick_golden.txt")
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	// Experiments added after the registry refactor (E12, the
	// link-fault matrix) append to the sweep; the pre-refactor golden
	// must survive as an exact prefix, and the appended block is pinned
	// by its own golden. Regenerate the E12 golden with:
	//
	//	go run ./cmd/sweep -quick -parallel 1 -exp E12 > testdata/sweep_quick_e12_golden.txt
	e12, err := os.ReadFile("../../testdata/sweep_quick_e12_golden.txt")
	if err != nil {
		t.Fatalf("reading E12 golden: %v", err)
	}
	// E13 (the chaos-campaign rows) appends after E12 and is pinned the
	// same way. Regenerate with:
	//
	//	go run ./cmd/sweep -quick -parallel 1 -exp E13 > testdata/sweep_quick_e13_golden.txt
	e13, err := os.ReadFile("../../testdata/sweep_quick_e13_golden.txt")
	if err != nil {
		t.Fatalf("reading E13 golden: %v", err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte(nil), golden...), e12...)
	want = append(want, e13...)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("sweep -quick output diverged from golden (pre-refactor E2–E11 + E12 + E13)\n--- got ---\n%s\n--- want ---\n%s",
			firstDiff(buf.Bytes(), want), firstDiff(want, buf.Bytes()))
	}
	if !bytes.HasPrefix(buf.Bytes(), golden) {
		t.Fatal("pre-refactor golden is no longer a prefix of the sweep output")
	}
}

// firstDiff returns a window of a around the first byte where a and b
// differ, to keep failure output readable.
func firstDiff(a, b []byte) []byte {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - 200
	if lo < 0 {
		lo = 0
	}
	hi := i + 200
	if hi > len(a) {
		hi = len(a)
	}
	return a[lo:hi]
}
