package lineartime_test

import (
	"fmt"

	"lineartime"
)

// The Example functions double as godoc documentation and as tests:
// every run is deterministic, so the outputs are exact.

func ExampleRunConsensus() {
	const n, t = 60, 12
	inputs := make([]bool, n)
	for i := n / 2; i < n; i++ {
		inputs[i] = true
	}
	report, err := lineartime.RunConsensus(n, t, inputs,
		lineartime.WithSeed(1),
		lineartime.WithCrashSchedule(lineartime.CrashEvent{Node: 2, Round: 0, Keep: 0}),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("agreement:", report.Agreement)
	fmt.Println("validity:", report.Validity)
	fmt.Println("crashed:", report.Crashed)
	// Output:
	// agreement: true
	// validity: true
	// crashed: [2]
}

func ExampleRunCheckpointing() {
	report, err := lineartime.RunCheckpointing(50, 10, false,
		lineartime.WithSeed(1),
		lineartime.WithCrashSchedule(lineartime.CrashEvent{Node: 7, Round: 0, Keep: 0}),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	inSet := false
	for _, v := range report.ExtantSet {
		if v == 7 {
			inSet = true
		}
	}
	fmt.Println("agreement:", report.Agreement)
	fmt.Println("silently crashed node in snapshot:", inSet)
	fmt.Println("snapshot size:", len(report.ExtantSet))
	// Output:
	// agreement: true
	// silently crashed node in snapshot: false
	// snapshot size: 49
}

func ExampleRunMajorityVote() {
	const n, t = 60, 12
	votes := make([]bool, n)
	for i := 0; i < 38; i++ {
		votes[i] = true
	}
	report, err := lineartime.RunMajorityVote(n, t, votes, lineartime.WithSeed(1))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("tally: %d/%d, yes wins: %v\n", report.YesVotes, report.Ballots, report.YesWins)
	// Output:
	// tally: 38/60, yes wins: true
}

func ExampleRunByzantineConsensus() {
	const n, t = 40, 4
	proposals := make([]uint64, n)
	for i := range proposals {
		proposals[i] = uint64(100 + i)
	}
	report, err := lineartime.RunByzantineConsensus(n, t, proposals, false,
		lineartime.WithSeed(1),
		lineartime.WithByzantine(lineartime.Equivocate, 0, 1),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var committed uint64
	for i, ok := range report.Decided {
		if ok {
			committed = report.Decisions[i]
			break
		}
	}
	fmt.Println("agreement:", report.Agreement)
	fmt.Println("committed:", committed)
	// Output:
	// agreement: true
	// committed: 119
}
